//! The deterministic CI perf lane: a small, seeded update workload whose
//! *engine counters* (sweeps, label operations, wave schedule) are
//! machine-independent — unlike wall-clock numbers, they can gate a PR
//! without flakiness.
//!
//! ```text
//! bench_smoke [--out PATH] [--check BASELINE] [--threshold PCT]
//! ```
//!
//! Writes a flat JSON report (`--out`, default `BENCH_pr.json`) and, when
//! `--check` names a baseline report, fails (exit 1) if a gated counter
//! (`total_sweeps` for maintenance, `merge_steps` for the query kernel)
//! regressed by more than `--threshold` percent (default 5). The workload
//! runs maintenance at `MaintenanceThreads::Fixed(2)` — the wave scheduler
//! is deterministic, so every counter (including the schedule shape) is
//! identical on any host and at any actual core count.
//!
//! After the maintenance epochs each scenario runs a query phase: a seeded
//! pair workload evaluated through both the live label sets and the frozen
//! [`dspc::FlatIndex`] columns. The phase panics on any result divergence
//! (the flat kernel must be bit-identical) and reports the kernel's
//! deterministic work units — `merge_steps`, `common_hubs`, and the flat
//! layout's `label_bytes_per_entry`.
//!
//! A final serving phase replays the scripted epoch-rotation loop of
//! [`dspc_bench::serving`]: a seeded hybrid stream drained through
//! `EpochServer` rotations while a reader fleet on a scripted refresh
//! cadence answers from published snapshots. Its `serve_*` counters are
//! deterministic; the gate on this phase is `serve_merge_steps`
//! *normalized by* `serve_rotations`, so adding rotations to the scenario
//! never masks a per-epoch kernel regression.
//!
//! A recovery phase then runs the scripted crash/recover cycle of
//! [`dspc_bench::recovery`]: a journaled server checkpointed mid-stream
//! and killed, recovered, and proven bit-identical to its never-crashed
//! twin. Gated counters: `recover_replayed_batches` (the recovery path
//! must keep replaying exactly the committed post-checkpoint work — a
//! drop means recovery silently skips durable batches, a rise means the
//! checkpoint stopped truncating) and `journal_bytes_per_update` (the
//! WAL's write amplification).

use dspc::directed::{directed_spc_query, ArcUpdate, DynamicDirectedSpc};
use dspc::dynamic::GraphUpdate;
use dspc::policy::{MaintenancePolicy, ManagedSpc};
use dspc::query::spc_query_counted;
use dspc::weighted::{weighted_spc_query, DynamicWeightedSpc, WeightedUpdate};
use dspc::{
    DynamicSpc, FlatScratch, KernelCounters, MaintenanceThreads, OrderingStrategy, UpdateStats,
};
use dspc_bench::serving::ServingReplayConfig;
use dspc_graph::generators::random::{
    barabasi_albert, erdos_renyi_gnm, random_orientation, random_weights,
};
use dspc_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const THREADS: MaintenanceThreads = MaintenanceThreads::Fixed(2);

fn usage() -> ! {
    eprintln!("usage: bench_smoke [--out PATH] [--check BASELINE] [--threshold PCT]");
    std::process::exit(2)
}

/// Accumulates one scenario's counters into the flat report.
fn absorb(report: &mut BTreeMap<String, u64>, stats: &UpdateStats) {
    let add = |m: &mut BTreeMap<String, u64>, k: &str, v: usize| {
        *m.entry(k.to_string()).or_insert(0) += v as u64;
    };
    add(report, "total_sweeps", stats.total_sweeps());
    add(report, "classify_sweeps", stats.classify_sweeps);
    add(report, "multi_far_sweeps", stats.multi_far_sweeps);
    add(report, "agenda_hubs", stats.agenda_hubs);
    add(report, "hubs_processed", stats.hubs_processed);
    add(report, "total_ops", stats.total_ops());
    add(report, "renew_count", stats.renew_count);
    add(report, "renew_dist", stats.renew_dist);
    add(report, "inserted", stats.inserted);
    add(report, "removed", stats.removed);
    add(report, "vertices_visited", stats.vertices_visited);
    add(report, "waves", stats.waves);
    let w = report.entry("max_wave_width".to_string()).or_insert(0);
    *w = (*w).max(stats.max_wave_width as u64);
}

/// Seeded query pairs over an `n`-vertex id space.
fn query_pairs(n: u32, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (VertexId(rng.gen_range(0..n)), VertexId(rng.gen_range(0..n))))
        .collect()
}

/// Folds one scenario's kernel counters into the report.
fn absorb_queries(report: &mut BTreeMap<String, u64>, counters: &KernelCounters) {
    *report.entry("query_pairs".to_string()).or_insert(0) += counters.queries;
    *report.entry("merge_steps".to_string()).or_insert(0) += counters.merge_steps;
    *report.entry("common_hubs".to_string()).or_insert(0) += counters.common_hubs;
}

/// Undirected scenario: a scale-free graph under mixed deletion epochs —
/// hub-incident batches (the amortization case) plus scattered edges.
fn undirected(report: &mut BTreeMap<String, u64>) {
    let mut rng = StdRng::seed_from_u64(0xD59C);
    let g = barabasi_albert(420, 3, &mut rng);
    let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
    d.set_maintenance_threads(THREADS);
    for epoch in 0..6 {
        let mut ops = Vec::new();
        let m = d.graph().num_edges();
        for i in 0..8usize {
            let (a, b) = d.graph().nth_edge((epoch * 53 + i * 17) % m).unwrap();
            if !ops
                .iter()
                .any(|o| matches!(o, GraphUpdate::DeleteEdge(x, y) if (*x, *y) == (a, b)))
            {
                ops.push(GraphUpdate::DeleteEdge(a, b));
            }
        }
        // A couple of inserts so epochs stay mixed.
        for _ in 0..2 {
            loop {
                let a = VertexId(rng.gen_range(0..420));
                let b = VertexId(rng.gen_range(0..420));
                if a != b && !d.graph().has_edge(a, b) {
                    ops.push(GraphUpdate::InsertEdge(a, b));
                    break;
                }
            }
        }
        absorb(report, &d.apply_batch(&ops).expect("valid epoch"));
    }
    *report.entry("label_entries".to_string()).or_insert(0) += d.index().num_entries() as u64;

    // Query phase: the live counted kernel and the frozen flat snapshot
    // must produce identical results AND identical deterministic work
    // counters (merge steps, common hubs) on a seeded pair workload.
    let pairs = query_pairs(420, 512, 0xF1A7);
    let mut live_c = KernelCounters::new();
    let live: Vec<_> = pairs
        .iter()
        .map(|&(s, t)| spc_query_counted(d.index(), &mut live_c, s, t))
        .collect();
    let flat = d.frozen_queries();
    let mut flat_c = KernelCounters::new();
    let mut scratch = FlatScratch::new();
    for (k, &(s, t)) in pairs.iter().enumerate() {
        assert_eq!(
            flat.query_counted(&mut scratch, &mut flat_c, s, t),
            live[k],
            "flat/live query divergence at {s:?}->{t:?}"
        );
    }
    assert_eq!(live_c, flat_c, "flat/live kernel counter divergence");
    absorb_queries(report, &flat_c);
    // Columnar bytes per entry (hub + dist + count columns): the flat
    // layout's storage density, pinned at 16 for unweighted labels.
    let bpe = flat.entry_column_bytes() / flat.num_entries().max(1);
    report.insert("label_bytes_per_entry".to_string(), bpe as u64);
}

/// Directed scenario: pure arc-deletion epochs on a sparse digraph.
fn directed(report: &mut BTreeMap<String, u64>) {
    let mut rng = StdRng::seed_from_u64(0xD1AC);
    let base = erdos_renyi_gnm(160, 480, &mut rng);
    let g = random_orientation(&base, 0.25, &mut rng);
    let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
    d.set_maintenance_threads(THREADS);
    for epoch in 0..4 {
        let arcs: Vec<_> = d.graph().arcs().collect();
        let mut ops = Vec::new();
        for i in 0..6usize {
            let (a, b) = arcs[(epoch * 97 + i * 31) % arcs.len()];
            if !ops
                .iter()
                .any(|o| matches!(o, ArcUpdate::DeleteArc(x, y) if (*x, *y) == (a, b)))
            {
                ops.push(ArcUpdate::DeleteArc(a, b));
            }
        }
        absorb(report, &d.apply_batch(&ops).expect("valid epoch"));
    }
    *report.entry("label_entries".to_string()).or_insert(0) += d.index().num_entries() as u64;

    // Query phase against the frozen `L_out(s) × L_in(t)` snapshot.
    let pairs = query_pairs(160, 384, 0xDA7A);
    let live: Vec<_> = pairs
        .iter()
        .map(|&(s, t)| directed_spc_query(d.index(), s, t))
        .collect();
    let flat = d.frozen_queries();
    let mut flat_c = KernelCounters::new();
    let mut scratch = FlatScratch::new();
    for (k, &(s, t)) in pairs.iter().enumerate() {
        assert_eq!(
            flat.query_counted(&mut scratch, &mut flat_c, s, t),
            live[k],
            "flat/live directed query divergence at {s:?}->{t:?}"
        );
    }
    absorb_queries(report, &flat_c);
}

/// Weighted scenario: deletion epochs on a weighted sparse graph.
fn weighted(report: &mut BTreeMap<String, u64>) {
    let mut rng = StdRng::seed_from_u64(0x3E1);
    let base = erdos_renyi_gnm(140, 420, &mut rng);
    let g = random_weights(&base, 5, &mut rng);
    let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Degree);
    d.set_maintenance_threads(THREADS);
    for epoch in 0..4 {
        let edges: Vec<_> = d.graph().edges().collect();
        let mut ops = Vec::new();
        for i in 0..6usize {
            let (a, b, _) = edges[(epoch * 89 + i * 23) % edges.len()];
            if !ops
                .iter()
                .any(|o| matches!(o, WeightedUpdate::DeleteEdge(x, y) if (*x, *y) == (a, b)))
            {
                ops.push(WeightedUpdate::DeleteEdge(a, b));
            }
        }
        absorb(report, &d.apply_batch(&ops).expect("valid epoch"));
    }
    *report.entry("label_entries".to_string()).or_insert(0) += d.index().num_entries() as u64;

    // Query phase against the frozen weighted (u64-distance) snapshot.
    let pairs = query_pairs(140, 384, 0x5EED);
    let live: Vec<_> = pairs
        .iter()
        .map(|&(s, t)| weighted_spc_query(d.index(), s, t))
        .collect();
    let flat = d.frozen_queries();
    let mut flat_c = KernelCounters::new();
    let mut scratch = FlatScratch::new();
    for (k, &(s, t)) in pairs.iter().enumerate() {
        assert_eq!(
            flat.query_counted(&mut scratch, &mut flat_c, s, t),
            live[k],
            "flat/live weighted query divergence at {s:?}->{t:?}"
        );
    }
    absorb_queries(report, &flat_c);
}

/// Bridged scenario: a cut vertex joins four wheels; severing every
/// bridge in one epoch leaves the wheels in disjoint residual components,
/// so the wave scheduler must find genuine width (the report's
/// `max_wave_width` guards that the interference test stays sharp enough
/// to parallelize disjoint components).
fn bridged(report: &mut BTreeMap<String, u64>) {
    let rim = 10u32;
    let wheels = 4u32;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut ops = Vec::new();
    for w in 0..wheels {
        let center = 1 + w * (rim + 1);
        edges.push((0, center));
        ops.push(GraphUpdate::DeleteEdge(VertexId(0), VertexId(center)));
        for i in 0..rim {
            let v = center + 1 + i;
            edges.push((center, v));
            edges.push((v, center + 1 + (i + 1) % rim));
        }
    }
    let n = 1 + wheels * (rim + 1);
    let g = dspc_graph::UndirectedGraph::from_edges(n as usize, &edges);
    // Identity order ranks the cut vertex 0 highest: all four bridge
    // deletions share it as their group key and repair as one agenda.
    let mut d = DynamicSpc::build(g, OrderingStrategy::Identity);
    d.set_maintenance_threads(THREADS);
    absorb(report, &d.apply_batch(&ops).expect("valid epoch"));
    *report.entry("label_entries".to_string()).or_insert(0) += d.index().num_entries() as u64;
}

/// Churn phase: a long degree-migrating update stream driven through
/// three twins — a tiered re-rank policy, a rebuild-after-every-epoch
/// baseline, and the NEVER policy. The phase hard-fails unless the tiered
/// maintainer (a) never full-rebuilds and (b) holds its index within 5%
/// of the rebuild-fresh twin's label entries, while its whole response is
/// bounded re-rank work (`churn_rerank_swaps` / `churn_rerank_sweeps`).
/// The NEVER twin's entry count is reported alongside as the bloat the
/// re-ranks avoided.
fn churn(report: &mut BTreeMap<String, u64>) {
    let mut rng = StdRng::seed_from_u64(0xC4DE);
    let g = barabasi_albert(300, 3, &mut rng);
    let epochs = dspc_bench::workload::churn_stream(&g, 30, 6, &mut rng);

    let managed = |policy: MaintenancePolicy| {
        let mut d = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
        d.set_maintenance_threads(THREADS);
        ManagedSpc::new(d, policy)
    };
    // The churn displaces rising vertices by ~100 rank positions per epoch
    // (each must bubble past the whole degree-tie band), so the batched
    // tier needs a budget on the order of the total displacement — the
    // replan loop stops early once staleness drops under the threshold.
    let mut tiered = managed(MaintenancePolicy {
        batched_swap_budget: 4096,
        ..MaintenancePolicy::tiered(0.02, 0.08, 0.95)
    });
    let mut never = managed(MaintenancePolicy::NEVER);
    let mut fresh = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
    fresh.set_maintenance_threads(THREADS);
    for batch in &epochs {
        tiered.apply_batch(batch).expect("valid churn epoch");
        never.apply_batch(batch).expect("valid churn epoch");
        fresh.apply_batch(batch).expect("valid churn epoch");
        fresh.rebuild();
    }
    let entries_tiered = tiered.inner().index().num_entries() as u64;
    let entries_never = never.inner().index().num_entries() as u64;
    let entries_fresh = fresh.index().num_entries() as u64;
    assert_eq!(
        tiered.rebuilds(),
        0,
        "tiered policy must absorb the churn without a full rebuild"
    );
    let drift = (entries_tiered as f64 - entries_fresh as f64) / entries_fresh as f64 * 100.0;
    assert!(
        drift <= 5.0,
        "tiered index drifted {drift:.2}% above rebuild-fresh ({entries_tiered} vs {entries_fresh})"
    );
    eprintln!(
        "[bench_smoke] churn: tiered {entries_tiered} vs fresh {entries_fresh} ({drift:+.2}%), never {entries_never}"
    );
    let rr = tiered.rerank_totals();
    report.insert("churn_rerank_swaps".to_string(), rr.rerank_swaps as u64);
    report.insert("churn_rerank_sweeps".to_string(), rr.rerank_sweeps as u64);
    report.insert("churn_rebuilds".to_string(), tiered.rebuilds() as u64);
    report.insert("churn_entries_tiered".to_string(), entries_tiered);
    report.insert("churn_entries_fresh".to_string(), entries_fresh);
    report.insert("churn_entries_never".to_string(), entries_never);
}

/// Serving phase: the deterministic epoch-rotation replay. Counters land
/// under the `serve_` prefix; per-shard kernel work is reported per shard
/// so a partitioning skew shows up in the lane output.
fn serving(report: &mut BTreeMap<String, u64>) {
    let replay = dspc_bench::serving::replay(ServingReplayConfig::smoke());
    report.insert("serve_rotations".to_string(), replay.rotations);
    report.insert("serve_updates_applied".to_string(), replay.updates_applied);
    report.insert("serve_queries".to_string(), replay.queries_served);
    report.insert("serve_stale_reads".to_string(), replay.stale_epoch_reads);
    report.insert("serve_merge_steps".to_string(), replay.merge_steps());
    for (shard, &steps) in replay.shard_merge_steps.iter().enumerate() {
        report.insert(format!("serve_shard{shard}_merge_steps"), steps);
    }
}

/// Recovery phase: the deterministic crash/recover cycle. The replay
/// itself panics on any recovery-equivalence violation, so reaching the
/// report at all is the correctness half; the counters gate the perf half.
fn recovery(report: &mut BTreeMap<String, u64>) {
    let replay = dspc_bench::recovery::replay(dspc_bench::recovery::RecoveryReplayConfig::smoke());
    report.insert("recover_rotations".to_string(), replay.rotations);
    report.insert(
        "recover_replayed_batches".to_string(),
        replay.replayed_batches,
    );
    report.insert(
        "recover_replayed_rotations".to_string(),
        replay.replayed_rotations,
    );
    report.insert(
        "recover_restored_pending_updates".to_string(),
        replay.restored_pending_updates,
    );
    report.insert("journal_bytes".to_string(), replay.journal_bytes);
    report.insert(
        "journal_bytes_per_update".to_string(),
        replay.journal_bytes_per_update(),
    );
}

fn render_json(report: &BTreeMap<String, u64>) -> String {
    let body: Vec<String> = report
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    format!("{{\n{}\n}}\n", body.join(",\n"))
}

/// Minimal parser for the flat `{"key": number, ...}` reports this tool
/// itself writes.
fn parse_json(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for part in text
        .trim()
        .trim_matches(|c| c == '{' || c == '}')
        .split(',')
    {
        let Some((k, v)) = part.split_once(':') else {
            continue;
        };
        let key = k.trim().trim_matches('"').to_string();
        if let Ok(value) = v.trim().parse::<u64>() {
            out.insert(key, value);
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_pr.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut threshold = 5.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--check" => {
                i += 1;
                baseline_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    let mut report = BTreeMap::new();
    undirected(&mut report);
    directed(&mut report);
    weighted(&mut report);
    bridged(&mut report);
    churn(&mut report);
    serving(&mut report);
    recovery(&mut report);

    let json = render_json(&report);
    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("[bench_smoke] wrote {out_path}");
    print!("{json}");

    if let Some(path) = baseline_path {
        let baseline = parse_json(&std::fs::read_to_string(&path).expect("read baseline"));
        let mut failed = false;
        for (key, &base) in &baseline {
            let now = report.get(key).copied().unwrap_or(0);
            let delta = if base == 0 {
                0.0
            } else {
                (now as f64 - base as f64) / base as f64 * 100.0
            };
            // Gated counters: maintenance work (total_sweeps), shared-far
            // classification drift (multi_far_sweeps), query kernel work
            // (merge_steps), recovery coverage (recover_replayed_batches),
            // and journal write amplification (journal_bytes_per_update).
            // Everything else is informational.
            let gate = key == "total_sweeps"
                || key == "multi_far_sweeps"
                || key == "merge_steps"
                || key == "recover_replayed_batches"
                || key == "journal_bytes_per_update"
                || key == "churn_rerank_sweeps"
                || key == "churn_entries_tiered";
            // max_wave_width gates in the opposite direction: it is a max
            // over epochs (rotation-agnostic by construction) and the
            // regression is the wave schedule LOSING width — disjoint
            // residual components that used to repair side by side
            // serializing into narrow waves.
            let width_gate = key == "max_wave_width";
            let effective = if width_gate { -delta } else { delta };
            let verdict = if (gate || width_gate) && effective > threshold {
                failed = true;
                "FAIL"
            } else if (gate || width_gate) && effective < -threshold {
                // An improvement beyond the threshold silently widens the
                // slack future regressions hide in — demand a refresh.
                "IMPROVED — refresh BENCH_baseline.json to lock it in"
            } else if gate || width_gate {
                "gate"
            } else {
                "info"
            };
            eprintln!("[bench_smoke] {key}: baseline {base}, now {now} ({delta:+.2}%) [{verdict}]");
        }
        // Serving gate: merge steps per rotation. Normalizing keeps the
        // gate honest if the scenario's rotation count ever changes —
        // more epochs of work must not dilute a per-epoch regression.
        let ratio = |r: &BTreeMap<String, u64>| -> Option<f64> {
            let steps = *r.get("serve_merge_steps")?;
            let rotations = *r.get("serve_rotations")?;
            (rotations > 0).then(|| steps as f64 / rotations as f64)
        };
        if let (Some(base), Some(now)) = (ratio(&baseline), ratio(&report)) {
            let delta = (now - base) / base * 100.0;
            let verdict = if delta > threshold {
                failed = true;
                "FAIL"
            } else if delta < -threshold {
                "IMPROVED — refresh BENCH_baseline.json to lock it in"
            } else {
                "gate"
            };
            eprintln!(
                "[bench_smoke] serve_merge_steps/rotation: baseline {base:.1}, now {now:.1} ({delta:+.2}%) [{verdict}]"
            );
        }
        if failed {
            eprintln!(
                "[bench_smoke] a gated counter regressed more than {threshold}% vs {path} — failing"
            );
            std::process::exit(1);
        }
        eprintln!("[bench_smoke] within {threshold}% of {path}");
    }
}
