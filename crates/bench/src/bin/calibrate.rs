//! Calibration utility: measures HP-SPC construction cost as a function of
//! graph size on Barabási–Albert inputs. Used to size the dataset registry
//! so that the reconstruction baseline stays runnable (see DESIGN.md §3).
//!
//! Run with: `cargo run --release -p dspc-bench --bin calibrate`

use dspc::{build_index, OrderingStrategy};
use dspc_graph::generators::random::barabasi_albert;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::time::Instant;

fn main() {
    println!("HP-SPC construction scaling on BA(n, m_attach) graphs:");
    for (n, m) in [
        (500usize, 3usize),
        (1000, 3),
        (2000, 3),
        (4000, 3),
        (8000, 3),
        (4000, 8),
    ] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(n, m, &mut rng);
        let t = Instant::now();
        let idx = build_index(&g, OrderingStrategy::Degree);
        let dt = t.elapsed();
        println!(
            "n={n:6} m={:7} build={:9.1?} entries={:9} avg_label={:.1}",
            g.num_edges(),
            dt,
            idx.num_entries(),
            idx.stats().avg_label_len
        );
        std::io::stdout().flush().unwrap();
    }
}
