//! The experiments driver — regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [all|table3|table4|table5|fig7|fig7a|fig7b|fig7c|fig8|fig9|fig10|fig11]
//!             [--quick] [--scale X] [--insertions N] [--deletions N]
//!             [--queries N] [--datasets KEY,KEY,...] [--seed N]
//! ```

use dspc_bench::exp::{self, Config};
use dspc_bench::runner;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [all|table3|table4|table5|fig7|fig7a|fig7b|fig7c|fig8|fig9|fig10|fig11]\n\
         \x20                 [--quick] [--scale X] [--insertions N] [--deletions N]\n\
         \x20                 [--queries N] [--datasets KEY,KEY,...] [--seed N]"
    );
    std::process::exit(2)
}

fn parse_args() -> (String, Config) {
    let mut cfg = Config::full();
    let mut target = "all".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                let only = std::mem::take(&mut cfg.only);
                cfg = Config::quick();
                cfg.only = only;
            }
            "--scale" => cfg.scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--insertions" => cfg.insertions = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--deletions" => cfg.deletions = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queries" => cfg.queries = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--datasets" => {
                cfg.only = value(&mut i)
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect()
            }
            flag if flag.starts_with("--") => usage(),
            t => target = t.to_ascii_lowercase(),
        }
        i += 1;
    }
    (target, cfg)
}

fn main() {
    let (target, cfg) = parse_args();
    eprintln!(
        "[experiments] target={target} scale={} insertions={} deletions={} queries={} datasets={}",
        cfg.scale,
        cfg.insertions,
        cfg.deletions,
        cfg.queries,
        if cfg.only.is_empty() {
            "all".to_string()
        } else {
            cfg.only.join(",")
        }
    );

    // Table 3, Figure 10 and Figure 11 manage their own graphs; the rest
    // share one measurement run per dataset.
    let needs_runs = matches!(
        target.as_str(),
        "all" | "table4" | "table5" | "fig7" | "fig7a" | "fig7b" | "fig7c" | "fig8" | "fig9"
    );
    let runs = if needs_runs {
        runner::run_all(&cfg)
    } else {
        Vec::new()
    };

    match target.as_str() {
        "table3" => println!("{}", exp::table3::run(&cfg)),
        "table4" => println!("{}", exp::table4::render(&runs)),
        "table5" => println!("{}", exp::table5::render(&runs)),
        "fig7a" => println!("{}", exp::fig7::render_a(&runs)),
        "fig7b" => println!("{}", exp::fig7::render_b(&runs)),
        "fig7c" => println!("{}", exp::fig7::render_c(&runs, &cfg)),
        "fig7" => {
            println!("{}", exp::fig7::render_a(&runs));
            println!("{}", exp::fig7::render_b(&runs));
            println!("{}", exp::fig7::render_c(&runs, &cfg));
        }
        "fig8" => println!("{}", exp::fig89::render_fig8(&runs)),
        "fig9" => println!("{}", exp::fig89::render_fig9(&runs)),
        "fig10" => println!("{}", exp::fig10::run(&cfg)),
        "fig11" => println!("{}", exp::fig11::run(&cfg)),
        "all" => {
            println!("{}", exp::table3::run(&cfg));
            println!("{}", exp::table4::render(&runs));
            println!("{}", exp::fig7::render_a(&runs));
            println!("{}", exp::fig7::render_b(&runs));
            println!("{}", exp::fig7::render_c(&runs, &cfg));
            println!("{}", exp::fig89::render_fig8(&runs));
            println!("{}", exp::fig89::render_fig9(&runs));
            println!("{}", exp::fig10::run(&cfg));
            println!("{}", exp::fig11::run(&cfg));
            println!("{}", exp::table5::render(&runs));
        }
        _ => usage(),
    }
}
