//! Workload generation following §4.1's protocol: random edge insertions,
//! random edge deletions, random query pairs, and the degree-skewed edge
//! pools of §4.5.

use dspc_graph::{UndirectedGraph, VertexId};
use rand::Rng;

/// Samples `k` distinct non-edges (candidate insertions) uniformly.
pub fn sample_insertions<R: Rng>(
    g: &UndirectedGraph,
    k: usize,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    let n = g.capacity() as u32;
    assert!(n >= 2, "graph too small to sample insertions");
    let mut chosen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(k);
    let mut guard = 0usize;
    while out.len() < k {
        guard += 1;
        assert!(
            guard < 1000 * k.max(16),
            "could not find enough non-edges (graph too dense?)"
        );
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (va, vb) = (VertexId(a), VertexId(b));
        if !g.contains_vertex(va) || !g.contains_vertex(vb) || g.has_edge(va, vb) {
            continue;
        }
        if chosen.insert((a, b)) {
            out.push((va, vb));
        }
    }
    out
}

/// Samples `k` distinct existing edges (candidate deletions) uniformly.
pub fn sample_deletions<R: Rng>(
    g: &UndirectedGraph,
    k: usize,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    assert!(edges.len() >= k, "not enough edges to delete");
    let mut picked = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let i = rng.gen_range(0..edges.len());
        if picked.insert(i) {
            out.push(edges[i]);
        }
    }
    out
}

/// Samples `k` random query pairs (with replacement, endpoints may repeat —
/// the paper's 10,000 random pairs).
pub fn sample_query_pairs<R: Rng>(
    g: &UndirectedGraph,
    k: usize,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    let vertices: Vec<VertexId> = g.vertices().collect();
    assert!(!vertices.is_empty());
    (0..k)
        .map(|_| {
            (
                vertices[rng.gen_range(0..vertices.len())],
                vertices[rng.gen_range(0..vertices.len())],
            )
        })
        .collect()
}

/// An edge with its degree product (the paper's §4.5 "degree of an edge":
/// `deg(u) · deg(v)`).
#[derive(Clone, Copy, Debug)]
pub struct SkewedEdge {
    /// Edge endpoints.
    pub edge: (VertexId, VertexId),
    /// `deg(u) * deg(v)` at sampling time.
    pub degree_product: u64,
}

/// Samples `k` existing edges and buckets them by degree product into
/// `buckets` quantile groups (Figure 11's x-axis). Returns edges sorted by
/// degree product along with their bucket index.
pub fn sample_skewed_deletions<R: Rng>(
    g: &UndirectedGraph,
    k: usize,
    buckets: usize,
    rng: &mut R,
) -> Vec<(SkewedEdge, usize)> {
    let mut picked = sample_deletions(g, k, rng)
        .into_iter()
        .map(|(u, v)| SkewedEdge {
            edge: (u, v),
            degree_product: g.degree(u) as u64 * g.degree(v) as u64,
        })
        .collect::<Vec<_>>();
    picked.sort_by_key(|e| e.degree_product);
    let per = picked.len().div_ceil(buckets.max(1));
    picked
        .into_iter()
        .enumerate()
        .map(|(i, e)| (e, i / per.max(1)))
        .collect()
}

/// Skewed *insertion* pool: samples `k` non-edges and buckets by endpoint
/// degree product, mirroring [`sample_skewed_deletions`].
pub fn sample_skewed_insertions<R: Rng>(
    g: &UndirectedGraph,
    k: usize,
    buckets: usize,
    rng: &mut R,
) -> Vec<(SkewedEdge, usize)> {
    let mut picked = sample_insertions(g, k, rng)
        .into_iter()
        .map(|(u, v)| SkewedEdge {
            edge: (u, v),
            degree_product: g.degree(u) as u64 * g.degree(v) as u64,
        })
        .collect::<Vec<_>>();
    picked.sort_by_key(|e| e.degree_product);
    let per = picked.len().div_ceil(buckets.max(1));
    picked
        .into_iter()
        .enumerate()
        .map(|(i, e)| (e, i / per.max(1)))
        .collect()
}

/// The §4.4 streaming mix: `ins` insertions and `del` deletions shuffled
/// into one update sequence (deletions drawn from the original graph, so
/// the stream is applicable in any order — inserted edges are fresh
/// non-edges, deleted edges are original edges, and the pools are
/// disjoint).
pub fn hybrid_stream<R: Rng>(
    g: &UndirectedGraph,
    ins: usize,
    del: usize,
    rng: &mut R,
) -> Vec<dspc::dynamic::GraphUpdate> {
    use dspc::dynamic::GraphUpdate;
    let insertions = sample_insertions(g, ins, rng);
    let deletions = sample_deletions(g, del, rng);
    let mut stream: Vec<GraphUpdate> = insertions
        .into_iter()
        .map(|(a, b)| GraphUpdate::InsertEdge(a, b))
        .chain(
            deletions
                .into_iter()
                .map(|(a, b)| GraphUpdate::DeleteEdge(a, b)),
        )
        .collect();
    // Fisher-Yates shuffle.
    for i in (1..stream.len()).rev() {
        stream.swap(i, rng.gen_range(0..=i));
    }
    stream
}

/// A churn stream: `epochs` update batches that steadily migrate edges
/// away from the graph's initially high-degree vertices toward its
/// initially low-degree ones, so the build-time degree order goes stale
/// the way §6 worries about — yesterday's hubs decay while fringe
/// vertices grow into hubs the old order ranks near the bottom.
///
/// Each batch performs `per_epoch` *moves*; a move deletes one edge
/// incident to a declining vertex (initial top-third by degree) and
/// inserts one fresh edge between two rising vertices (initial
/// bottom-third). Batches are generated against a live copy of the graph,
/// so each one is valid when applied in sequence after its predecessors.
pub fn churn_stream<R: Rng>(
    g: &UndirectedGraph,
    epochs: usize,
    per_epoch: usize,
    rng: &mut R,
) -> Vec<Vec<dspc::dynamic::GraphUpdate>> {
    use dspc::dynamic::GraphUpdate;
    let mut live = g.clone();
    let mut by_degree: Vec<VertexId> = live.vertices().collect();
    by_degree.sort_by_key(|&v| (live.degree(v), v.0));
    let third = by_degree.len() / 3;
    let rising: Vec<VertexId> = by_degree[..third].to_vec();
    let declining: Vec<VertexId> = by_degree[by_degree.len() - third..].to_vec();
    let mut out = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let mut batch = Vec::with_capacity(2 * per_epoch);
        for _ in 0..per_epoch {
            // Delete an edge off a declining vertex that still has one.
            let mut guard = 0;
            loop {
                guard += 1;
                if guard > 10_000 {
                    break;
                }
                let d = declining[rng.gen_range(0..declining.len())];
                if live.degree(d) == 0 {
                    continue;
                }
                let nbrs = live.neighbors(d);
                let u = VertexId(nbrs[rng.gen_range(0..nbrs.len())]);
                live.delete_edge(d, u).expect("live edge");
                batch.push(GraphUpdate::DeleteEdge(d, u));
                break;
            }
            // Insert a fresh edge between two rising vertices.
            let mut guard = 0;
            loop {
                guard += 1;
                if guard > 10_000 {
                    break;
                }
                let a = rising[rng.gen_range(0..rising.len())];
                let b = rising[rng.gen_range(0..rising.len())];
                if a == b || live.has_edge(a, b) {
                    continue;
                }
                live.insert_edge(a, b).expect("fresh non-edge");
                batch.push(GraphUpdate::InsertEdge(a, b));
                break;
            }
        }
        out.push(batch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspc_graph::generators::random::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> UndirectedGraph {
        barabasi_albert(200, 3, &mut StdRng::seed_from_u64(5))
    }

    #[test]
    fn insertions_are_fresh_non_edges() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(1);
        let ins = sample_insertions(&g, 50, &mut rng);
        assert_eq!(ins.len(), 50);
        for &(a, b) in &ins {
            assert!(!g.has_edge(a, b));
            assert_ne!(a, b);
        }
        let set: std::collections::HashSet<_> = ins.iter().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn deletions_are_distinct_existing_edges() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(2);
        let del = sample_deletions(&g, 30, &mut rng);
        assert_eq!(del.len(), 30);
        for &(a, b) in &del {
            assert!(g.has_edge(a, b));
        }
        let set: std::collections::HashSet<_> = del.iter().collect();
        assert_eq!(set.len(), 30);
    }

    #[test]
    fn query_pairs_cover_alive_vertices() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = sample_query_pairs(&g, 100, &mut rng);
        assert_eq!(pairs.len(), 100);
        for &(s, t) in &pairs {
            assert!(g.contains_vertex(s) && g.contains_vertex(t));
        }
    }

    #[test]
    fn skewed_buckets_are_monotone() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(4);
        let sk = sample_skewed_deletions(&g, 40, 4, &mut rng);
        assert_eq!(sk.len(), 40);
        for w in sk.windows(2) {
            assert!(w[0].0.degree_product <= w[1].0.degree_product);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(sk.last().unwrap().1, 3);
    }

    #[test]
    fn hybrid_stream_applies_cleanly() {
        use dspc::{DynamicSpc, OrderingStrategy};
        let g = graph();
        let mut rng = StdRng::seed_from_u64(6);
        let stream = hybrid_stream(&g, 20, 5, &mut rng);
        assert_eq!(stream.len(), 25);
        let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
        for u in stream {
            d.apply(u).unwrap();
        }
    }

    #[test]
    fn churn_stream_applies_cleanly_and_inverts_the_order() {
        use dspc::order::degree_order_staleness;
        use dspc::{DynamicSpc, OrderingStrategy};
        let g = graph();
        let mut rng = StdRng::seed_from_u64(7);
        let epochs = churn_stream(&g, 12, 5, &mut rng);
        assert_eq!(epochs.len(), 12);
        let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
        let before = degree_order_staleness(d.graph(), d.index().ranks());
        for batch in &epochs {
            d.apply_batch(batch).unwrap();
        }
        let after = degree_order_staleness(d.graph(), d.index().ranks());
        assert!(
            after > before,
            "churn must increase staleness ({before} -> {after})"
        );
    }
}
