//! Property-based equivalence of the flat columnar query path: for
//! arbitrary random graphs, the frozen [`dspc::FlatIndex`] (and its
//! directed / weighted counterparts) must answer exactly like the live
//! label sets, which in turn must match the brute-force counting oracle.
//! Also covers the `PreQUERY` rank-limited kernels and the dynamic
//! facades' snapshot invalidation contract around `apply_batch`.

use dspc::directed::{directed_pre_query, directed_spc_query, DynamicDirectedSpc};
use dspc::weighted::{weighted_pre_query, weighted_spc_query, DynamicWeightedSpc};
use dspc::{pre_query, spc_query, DynamicSpc, FlatIndex, GraphUpdate, OrderingStrategy};
use dspc_graph::traversal::bfs::BfsCounter;
use dspc_graph::traversal::dbfs::DirectedBfsCounter;
use dspc_graph::traversal::dijkstra::DijkstraCounter;
use dspc_graph::VertexId;
use proptest::prelude::*;

mod common;
use common::graph_strategy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Flat undirected queries ≡ live kernel ≡ counting BFS, and the
    /// flat `PreQUERY` honors the same rank limit as the live one.
    #[test]
    fn flat_matches_live_and_oracle(g in graph_strategy(18), seed in 0u64..1000) {
        for strategy in [
            OrderingStrategy::Degree,
            OrderingStrategy::Identity,
            OrderingStrategy::Random(seed),
        ] {
            let index = dspc::build_index(&g, strategy);
            let flat = FlatIndex::freeze(&index);
            let mut bfs = BfsCounter::new(g.capacity());
            for s in g.vertices() {
                for t in g.vertices() {
                    let live = spc_query(&index, s, t);
                    prop_assert_eq!(flat.query(s, t), live);
                    prop_assert_eq!(live.as_option(), bfs.count(&g, s, t));
                    prop_assert_eq!(flat.pre_query(s, t), pre_query(&index, s, t));
                }
            }
        }
    }

    /// Directed flat queries ≡ live `L_out × L_in` merge ≡ directed BFS.
    #[test]
    fn directed_flat_matches_live_and_oracle(
        n in 3usize..12,
        arcs in proptest::collection::vec((0u32..12, 0u32..12), 0..40),
    ) {
        let arcs: Vec<(u32, u32)> = arcs
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = dspc_graph::DirectedGraph::from_arcs(n, &arcs);
        let index = dspc::directed::build_directed_index(&g, OrderingStrategy::Degree);
        let flat = dspc::DirectedFlatIndex::freeze(&index);
        let mut bfs = DirectedBfsCounter::new(g.capacity());
        for s in g.vertices() {
            for t in g.vertices() {
                let live = directed_spc_query(&index, s, t);
                prop_assert_eq!(flat.query(s, t), live);
                prop_assert_eq!(live.as_option(), bfs.count(&g, s, t));
                prop_assert_eq!(flat.pre_query(s, t), directed_pre_query(&index, s, t));
            }
        }
    }

    /// Weighted flat queries ≡ live merge ≡ counting Dijkstra.
    #[test]
    fn weighted_flat_matches_live_and_oracle(
        g in graph_strategy(12),
        weights in proptest::collection::vec(1u32..6, 40),
    ) {
        let triples: Vec<(u32, u32, u32)> = g
            .edges()
            .enumerate()
            .map(|(i, (u, v))| (u.0, v.0, weights[i % weights.len()]))
            .collect();
        let wg = dspc_graph::WeightedGraph::from_weighted_edges(g.capacity(), &triples);
        let index = dspc::weighted::build_weighted_index(&wg, OrderingStrategy::Degree);
        let flat = dspc::WeightedFlatIndex::freeze(&index);
        let mut dj = DijkstraCounter::new(wg.capacity());
        for s in wg.vertices() {
            for t in wg.vertices() {
                let live = weighted_spc_query(&index, s, t);
                prop_assert_eq!(flat.query(s, t), live);
                prop_assert_eq!(live.as_option(), dj.count(&wg, s, t));
                prop_assert_eq!(flat.pre_query(s, t), weighted_pre_query(&index, s, t));
            }
        }
    }

    /// `frozen_queries` snapshots stay exact across `apply_batch` epochs:
    /// every mutation drops the cache, and the refrozen snapshot answers
    /// like the repaired live index.
    #[test]
    fn frozen_snapshot_invalidates_across_batches(
        g in graph_strategy(14),
        picks in proptest::collection::vec(0usize..1 << 12, 1..4),
    ) {
        let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
        d.frozen_queries();
        prop_assert!(d.has_frozen_snapshot());
        for pick in picks {
            let m = d.graph().num_edges();
            if m == 0 { break; }
            let (a, b) = d.graph().nth_edge(pick % m).unwrap();
            d.apply_batch(&[GraphUpdate::DeleteEdge(a, b)]).unwrap();
            prop_assert!(!d.has_frozen_snapshot(), "mutation must drop the snapshot");
            let vs: Vec<VertexId> = d.graph().vertices().collect();
            for &s in &vs {
                for &t in &vs {
                    let live = d.query(s, t);
                    prop_assert_eq!(d.frozen_queries().query(s, t).as_option(), live);
                }
            }
            prop_assert!(d.has_frozen_snapshot());
        }
    }
}

/// Deterministic spot checks of the directed and weighted facades'
/// invalidation flags (kept out of proptest: one shape suffices).
#[test]
fn directed_and_weighted_facades_invalidate() {
    let g = dspc_graph::DirectedGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
    let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
    assert_eq!(
        d.frozen_queries()
            .query(VertexId(0), VertexId(3))
            .as_option(),
        Some((1, 1))
    );
    assert!(d.has_frozen_snapshot());
    d.delete_arc(VertexId(0), VertexId(3)).unwrap();
    assert!(!d.has_frozen_snapshot());
    assert_eq!(
        d.frozen_queries()
            .query(VertexId(0), VertexId(3))
            .as_option(),
        Some((3, 1))
    );

    let wg = dspc_graph::WeightedGraph::from_weighted_edges(3, &[(0, 1, 2), (1, 2, 2), (0, 2, 5)]);
    let mut w = DynamicWeightedSpc::build(wg, OrderingStrategy::Degree);
    assert_eq!(
        w.frozen_queries()
            .query(VertexId(0), VertexId(2))
            .as_option(),
        Some((4, 1))
    );
    w.set_weight(VertexId(0), VertexId(2), 3).unwrap();
    assert!(!w.has_frozen_snapshot());
    assert_eq!(
        w.frozen_queries()
            .query(VertexId(0), VertexId(2))
            .as_option(),
        Some((3, 1))
    );
}
