//! Property tests for the batch write path: for random graphs and random
//! *valid* update batches, `apply_batch` must be query-equivalent to
//! applying the same updates one by one, and to a from-scratch rebuild of
//! the final graph — on all three variants (undirected, directed,
//! weighted), ESPC-verified against the brute-force oracles in
//! `dspc::verify`.

use dspc::directed::{ArcUpdate, DynamicDirectedSpc};
use dspc::dynamic::GraphUpdate;
use dspc::verify::{verify_all_pairs, verify_directed_all_pairs, verify_weighted_all_pairs};
use dspc::weighted::{DynamicWeightedSpc, WeightedUpdate};
use dspc::{DynamicSpc, OrderingStrategy};
use dspc_graph::{DirectedGraph, UndirectedGraph, VertexId, WeightedGraph};
use proptest::prelude::*;

/// A small random undirected graph as (n, edge list).
fn graph_strategy(max_n: usize) -> impl Strategy<Value = UndirectedGraph> {
    (3usize..max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(3 * n))
            .prop_map(move |edges| UndirectedGraph::from_edges(n, &edges))
    })
}

/// Raw op picks: `(is_insert, selector)` decoded against the evolving
/// graph so every generated batch is sequentially valid.
fn picks_strategy(len: usize) -> impl Strategy<Value = Vec<(bool, usize)>> {
    proptest::collection::vec((proptest::bool::ANY, 0usize..1 << 16), 0..=len)
}

fn non_edges(g: &UndirectedGraph) -> Vec<(VertexId, VertexId)> {
    let vs: Vec<VertexId> = g.vertices().collect();
    let mut out = Vec::new();
    for (i, &u) in vs.iter().enumerate() {
        for &v in &vs[i + 1..] {
            if !g.has_edge(u, v) {
                out.push((u, v));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Undirected: batch ≡ stream ≡ rebuild, oracle-exact.
    #[test]
    fn undirected_batch_equivalence(g in graph_strategy(14), picks in picks_strategy(10)) {
        // Decode picks into a sequentially valid batch on a shadow graph.
        let mut shadow = g.clone();
        let mut ops: Vec<GraphUpdate> = Vec::new();
        for (insert, sel) in picks {
            if insert {
                let pool = non_edges(&shadow);
                if pool.is_empty() { continue; }
                let (a, b) = pool[sel % pool.len()];
                shadow.insert_edge(a, b).unwrap();
                ops.push(GraphUpdate::InsertEdge(a, b));
            } else {
                let m = shadow.num_edges();
                if m == 0 { continue; }
                let (a, b) = shadow.nth_edge(sel % m).unwrap();
                shadow.delete_edge(a, b).unwrap();
                ops.push(GraphUpdate::DeleteEdge(a, b));
            }
        }

        let mut batched = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
        batched.apply_batch(&ops).unwrap();
        let mut streamed = DynamicSpc::build(g, OrderingStrategy::Degree);
        streamed.apply_stream(&ops).unwrap();

        // Batch and stream land on the same graph…
        prop_assert_eq!(batched.graph().num_edges(), streamed.graph().num_edges());
        // …and both are ESPC-exact (hence query-equivalent to each other
        // and to a fresh rebuild of the final graph).
        verify_all_pairs(batched.graph(), batched.index()).unwrap();
        verify_all_pairs(streamed.graph(), streamed.index()).unwrap();
        let rebuilt = dspc::build_index(batched.graph(), OrderingStrategy::Degree);
        for s in batched.graph().vertices() {
            for t in batched.graph().vertices() {
                prop_assert_eq!(
                    batched.query(s, t),
                    dspc::spc_query(&rebuilt, s, t).as_option(),
                    "pair ({:?},{:?})", s, t
                );
            }
        }
        batched.index().check_invariants().unwrap();
    }

    /// Directed: batch ≡ stream ≡ rebuild, oracle-exact.
    #[test]
    fn directed_batch_equivalence(
        n in 3usize..10,
        arcs in proptest::collection::vec((0u32..10, 0u32..10), 0..30),
        picks in picks_strategy(8),
    ) {
        let arcs: Vec<(u32, u32)> = arcs
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = DirectedGraph::from_arcs(n, &arcs);
        let mut shadow = g.clone();
        let mut ops: Vec<ArcUpdate> = Vec::new();
        for (insert, sel) in picks {
            if insert {
                let mut pool = Vec::new();
                for u in 0..n as u32 {
                    for v in 0..n as u32 {
                        if u != v && !shadow.has_arc(VertexId(u), VertexId(v)) {
                            pool.push((u, v));
                        }
                    }
                }
                if pool.is_empty() { continue; }
                let (a, b) = pool[sel % pool.len()];
                shadow.insert_arc(VertexId(a), VertexId(b)).unwrap();
                ops.push(ArcUpdate::InsertArc(VertexId(a), VertexId(b)));
            } else {
                let live: Vec<_> = shadow.arcs().collect();
                if live.is_empty() { continue; }
                let (a, b) = live[sel % live.len()];
                shadow.delete_arc(a, b).unwrap();
                ops.push(ArcUpdate::DeleteArc(a, b));
            }
        }

        let mut batched = DynamicDirectedSpc::build(g.clone(), OrderingStrategy::Degree);
        batched.apply_batch(&ops).unwrap();
        let mut streamed = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        for &op in &ops {
            match op {
                ArcUpdate::InsertArc(a, b) => { streamed.insert_arc(a, b).unwrap(); }
                ArcUpdate::DeleteArc(a, b) => { streamed.delete_arc(a, b).unwrap(); }
            }
        }

        prop_assert_eq!(batched.graph().num_arcs(), streamed.graph().num_arcs());
        verify_directed_all_pairs(batched.graph(), batched.index()).unwrap();
        verify_directed_all_pairs(streamed.graph(), streamed.index()).unwrap();
        let rebuilt =
            dspc::directed::build_directed_index(batched.graph(), OrderingStrategy::Degree);
        for s in batched.graph().vertices() {
            for t in batched.graph().vertices() {
                prop_assert_eq!(
                    batched.query(s, t),
                    dspc::directed::directed_spc_query(&rebuilt, s, t).as_option(),
                    "pair ({:?}→{:?})", s, t
                );
            }
        }
        batched.index().check_invariants().unwrap();
    }

    /// Weighted: batch ≡ stream ≡ rebuild, oracle-exact, including weight
    /// rewrites folding to the last value.
    #[test]
    fn weighted_batch_equivalence(
        g in graph_strategy(10),
        weights in proptest::collection::vec(1u32..6, 32),
        picks in proptest::collection::vec((0u32..3, 0usize..1 << 16, 1u32..7), 0..8),
    ) {
        let triples: Vec<(u32, u32, u32)> = g
            .edges()
            .enumerate()
            .map(|(i, (u, v))| (u.0, v.0, weights[i % weights.len()]))
            .collect();
        let wg = WeightedGraph::from_weighted_edges(g.capacity(), &triples);
        let mut shadow = wg.clone();
        let mut ops: Vec<WeightedUpdate> = Vec::new();
        for (kind, sel, w) in picks {
            match kind {
                0 => {
                    let vs: Vec<VertexId> = shadow.vertices().collect();
                    let mut pool = Vec::new();
                    for (i, &u) in vs.iter().enumerate() {
                        for &v in &vs[i + 1..] {
                            if !shadow.has_edge(u, v) {
                                pool.push((u, v));
                            }
                        }
                    }
                    if pool.is_empty() { continue; }
                    let (a, b) = pool[sel % pool.len()];
                    shadow.insert_edge(a, b, w).unwrap();
                    ops.push(WeightedUpdate::InsertEdge(a, b, w));
                }
                1 => {
                    let live: Vec<_> = shadow.edges().collect();
                    if live.is_empty() { continue; }
                    let (a, b, _) = live[sel % live.len()];
                    shadow.delete_edge(a, b).unwrap();
                    ops.push(WeightedUpdate::DeleteEdge(a, b));
                }
                _ => {
                    let live: Vec<_> = shadow.edges().collect();
                    if live.is_empty() { continue; }
                    let (a, b, _) = live[sel % live.len()];
                    shadow.set_weight(a, b, w).unwrap();
                    ops.push(WeightedUpdate::SetWeight(a, b, w));
                }
            }
        }

        let mut batched = DynamicWeightedSpc::build(wg.clone(), OrderingStrategy::Degree);
        batched.apply_batch(&ops).unwrap();
        let mut streamed = DynamicWeightedSpc::build(wg, OrderingStrategy::Degree);
        for &op in &ops {
            match op {
                WeightedUpdate::InsertEdge(a, b, w) => { streamed.insert_edge(a, b, w).unwrap(); }
                WeightedUpdate::DeleteEdge(a, b) => { streamed.delete_edge(a, b).unwrap(); }
                WeightedUpdate::SetWeight(a, b, w) => { streamed.set_weight(a, b, w).unwrap(); }
            }
        }

        prop_assert_eq!(batched.graph().num_edges(), streamed.graph().num_edges());
        verify_weighted_all_pairs(batched.graph(), batched.index()).unwrap();
        verify_weighted_all_pairs(streamed.graph(), streamed.index()).unwrap();
        let rebuilt =
            dspc::weighted::build_weighted_index(batched.graph(), OrderingStrategy::Degree);
        for s in batched.graph().vertices() {
            for t in batched.graph().vertices() {
                prop_assert_eq!(
                    batched.query(s, t),
                    dspc::weighted::weighted_spc_query(&rebuilt, s, t).as_option(),
                    "pair ({:?},{:?})", s, t
                );
            }
        }
        batched.index().check_invariants().unwrap();
    }
}
