//! Integration tests for the Appendix C extensions: directed and weighted
//! dynamic indexes driven through realistic cross-crate scenarios.

use dspc::directed::DynamicDirectedSpc;
use dspc::verify::{verify_directed_all_pairs, verify_weighted_all_pairs};
use dspc::weighted::DynamicWeightedSpc;
use dspc::OrderingStrategy;
use dspc_graph::generators::random::{
    barabasi_albert, erdos_renyi_gnm, random_orientation, random_weights,
};
use dspc_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn directed_web_graph_full_lifecycle() {
    let mut rng = StdRng::seed_from_u64(0x2001);
    let base = barabasi_albert(60, 2, &mut rng);
    let web = random_orientation(&base, 0.3, &mut rng);
    let mut site = DynamicDirectedSpc::build(web, OrderingStrategy::Degree);
    verify_directed_all_pairs(site.graph(), site.index()).unwrap();

    // Publish new links, retire others, add and remove a page.
    for _ in 0..20 {
        loop {
            let a = VertexId(rng.gen_range(0..site.graph().capacity() as u32));
            let b = VertexId(rng.gen_range(0..site.graph().capacity() as u32));
            if a != b
                && site.graph().contains_vertex(a)
                && site.graph().contains_vertex(b)
                && !site.graph().has_arc(a, b)
            {
                site.insert_arc(a, b).unwrap();
                break;
            }
        }
    }
    for _ in 0..8 {
        let arcs: Vec<_> = site.graph().arcs().collect();
        let (a, b) = arcs[rng.gen_range(0..arcs.len())];
        site.delete_arc(a, b).unwrap();
    }
    let page = site.add_vertex();
    site.insert_arc(VertexId(0), page).unwrap();
    site.insert_arc(page, VertexId(5)).unwrap();
    verify_directed_all_pairs(site.graph(), site.index()).unwrap();
    site.delete_vertex(page).unwrap();
    verify_directed_all_pairs(site.graph(), site.index()).unwrap();
    site.index().check_invariants().unwrap();
}

#[test]
fn weighted_road_network_full_lifecycle() {
    let mut rng = StdRng::seed_from_u64(0x2002);
    let base = erdos_renyi_gnm(50, 120, &mut rng);
    let roads = random_weights(&base, 9, &mut rng);
    let mut net = DynamicWeightedSpc::build(roads, OrderingStrategy::Degree);
    verify_weighted_all_pairs(net.graph(), net.index()).unwrap();

    // Traffic updates: congestion (weight up), clearing (weight down),
    // closures (delete), new roads (insert), a new junction.
    for step in 0..25 {
        match step % 5 {
            0 => {
                let edges: Vec<_> = net.graph().edges().collect();
                let (a, b, w) = edges[rng.gen_range(0..edges.len())];
                net.set_weight(a, b, w + rng.gen_range(1..4u32)).unwrap();
            }
            1 => {
                let edges: Vec<_> = net.graph().edges().collect();
                let (a, b, w) = edges[rng.gen_range(0..edges.len())];
                if w > 1 {
                    net.set_weight(a, b, rng.gen_range(1..w.max(2))).unwrap();
                }
            }
            2 => {
                let edges: Vec<_> = net.graph().edges().collect();
                let (a, b, _) = edges[rng.gen_range(0..edges.len())];
                net.delete_edge(a, b).unwrap();
            }
            _ => loop {
                let a = VertexId(rng.gen_range(0..net.graph().capacity() as u32));
                let b = VertexId(rng.gen_range(0..net.graph().capacity() as u32));
                if a != b
                    && net.graph().contains_vertex(a)
                    && net.graph().contains_vertex(b)
                    && !net.graph().has_edge(a, b)
                {
                    net.insert_edge(a, b, rng.gen_range(1..=9)).unwrap();
                    break;
                }
            },
        }
        if step % 8 == 7 {
            verify_weighted_all_pairs(net.graph(), net.index()).unwrap();
        }
    }
    let junction = net.add_vertex();
    net.insert_edge(junction, VertexId(0), 2).unwrap();
    net.insert_edge(junction, VertexId(10), 2).unwrap();
    verify_weighted_all_pairs(net.graph(), net.index()).unwrap();
    net.delete_vertex(junction).unwrap();
    verify_weighted_all_pairs(net.graph(), net.index()).unwrap();
    net.index().check_invariants().unwrap();
}

#[test]
fn weighted_unit_weights_agree_with_unweighted_index() {
    // With all weights = 1 the weighted and unweighted indexes must agree
    // on every pair — even after equivalent update streams.
    let mut rng = StdRng::seed_from_u64(0x2003);
    let base = erdos_renyi_gnm(40, 90, &mut rng);
    let wgraph = random_weights(&base, 1, &mut rng);
    let mut wd = DynamicWeightedSpc::build(wgraph, OrderingStrategy::Degree);
    let mut ud = dspc::DynamicSpc::build(base, OrderingStrategy::Degree);
    for _ in 0..10 {
        loop {
            let a = VertexId(rng.gen_range(0..40));
            let b = VertexId(rng.gen_range(0..40));
            if a != b && !ud.graph().has_edge(a, b) {
                ud.insert_edge(a, b).unwrap();
                wd.insert_edge(a, b, 1).unwrap();
                break;
            }
        }
    }
    for _ in 0..5 {
        let m = ud.graph().num_edges();
        let (a, b) = ud.graph().nth_edge(rng.gen_range(0..m)).unwrap();
        ud.delete_edge(a, b).unwrap();
        wd.delete_edge(a, b).unwrap();
    }
    for s in ud.graph().vertices() {
        for t in ud.graph().vertices() {
            assert_eq!(
                wd.query(s, t),
                ud.query(s, t).map(|(d, c)| (d as u64, c)),
                "pair ({s:?},{t:?})"
            );
        }
    }
}

#[test]
fn directed_symmetric_graph_agrees_with_undirected_index() {
    // A digraph with every arc reciprocated is an undirected graph in
    // disguise: both indexes must answer identically.
    let mut rng = StdRng::seed_from_u64(0x2004);
    let base = erdos_renyi_gnm(35, 80, &mut rng);
    let sym = random_orientation(&base, 1.0, &mut rng); // keep both directions
    let dd = DynamicDirectedSpc::build(sym, OrderingStrategy::Degree);
    let ud = dspc::DynamicSpc::build(base, OrderingStrategy::Degree);
    for s in ud.graph().vertices() {
        for t in ud.graph().vertices() {
            assert_eq!(dd.query(s, t), ud.query(s, t), "pair ({s:?},{t:?})");
        }
    }
}
