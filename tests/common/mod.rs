//! Helpers shared by the workspace integration tests (`mod common;`).

#![allow(dead_code)]

use dspc_graph::UndirectedGraph;
use proptest::prelude::*;

/// Strategy: a small random graph as (n, edge list).
pub fn graph_strategy(max_n: usize) -> impl Strategy<Value = UndirectedGraph> {
    (2usize..max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(3 * n))
            .prop_map(move |edges| UndirectedGraph::from_edges(n, &edges))
    })
}
