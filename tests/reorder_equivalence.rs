//! Equivalence proofs for incremental re-ranking: for arbitrary graphs
//! and arbitrary non-overlapping adjacent-swap plans, the repaired index
//! must be bit-identical to a fresh build at the swapped order — for the
//! undirected core (at every maintenance thread count), the directed
//! extension, and the weighted extension — and must still answer exactly
//! like the brute-force oracle. Plus the [`ManagedSpc`] tier transitions:
//! each maintenance tier (local re-rank, batched re-rank, full rebuild)
//! fires at its staleness band and drops the frozen query snapshot.

use dspc::order::{degree_order_staleness, plan_adjacent_swaps};
use dspc::policy::{MaintenanceAction, MaintenancePolicy, ManagedSpc};
use dspc::reorder::{rerank_adjacent, rerank_adjacent_directed, rerank_adjacent_weighted};
use dspc::verify::{verify_all_pairs, verify_directed_all_pairs, verify_weighted_all_pairs};
use dspc::{rebuild_index, DynamicSpc, GraphUpdate, OrderingStrategy, Rank, RankMap};
use dspc_graph::{UndirectedGraph, VertexId};
use proptest::prelude::*;

/// Strategy: a small random graph as (n, edge list).
fn graph_strategy(max_n: usize) -> impl Strategy<Value = UndirectedGraph> {
    (4usize..max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(3 * n))
            .prop_map(move |edges| UndirectedGraph::from_edges(n, &edges))
    })
}

fn swapped_order(ranks: &RankMap, swaps: &[Rank]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..ranks.len() as u32)
        .map(|r| ranks.vertex(Rank(r)).0)
        .collect();
    for &r in swaps {
        order.swap(r.index(), r.index() + 1);
    }
    order
}

/// Decode raw rank picks into a sorted, non-overlapping swap plan.
fn decode_swaps(picks: &[u32], n: u32) -> Vec<Rank> {
    let mut swaps: Vec<u32> = picks.iter().map(|&p| p % (n - 1)).collect();
    swaps.sort_unstable();
    swaps.dedup();
    let mut out: Vec<Rank> = Vec::new();
    for r in swaps {
        if out.last().is_none_or(|&last| r > last.0 + 1) {
            out.push(Rank(r));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Undirected: re-rank ≡ rebuild at the swapped order, at every
    /// thread count, and the result still matches counting BFS.
    #[test]
    fn undirected_rerank_equals_rebuild(
        g in graph_strategy(28),
        picks in proptest::collection::vec(0u32..1 << 16, 1..6),
        seed in 0u64..1 << 20,
    ) {
        let base = RankMap::build(&g, OrderingStrategy::Random(seed));
        let swaps = decode_swaps(&picks, g.capacity() as u32);
        assert!(!swaps.is_empty(), "decode_swaps always yields at least one swap");
        let fresh = rebuild_index(
            &g,
            RankMap::from_rank_order(&swapped_order(&base, &swaps), base.strategy()),
        );
        for threads in [1usize, 2, 4, 8] {
            let mut index = rebuild_index(&g, base.clone());
            let c = rerank_adjacent(&g, &mut index, &swaps, threads);
            prop_assert_eq!(c.rerank_swaps, swaps.len());
            index.check_invariants().unwrap();
            prop_assert_eq!(&index, &fresh, "threads={} differs from rebuild", threads);
        }
        verify_all_pairs(&g, &fresh).unwrap();
    }

    /// Directed: sequential re-rank ≡ rebuild, oracle-checked.
    #[test]
    fn directed_rerank_equals_rebuild(
        arcs in proptest::collection::vec((0u32..18, 0u32..18), 0..70),
        picks in proptest::collection::vec(0u32..1 << 16, 1..5),
    ) {
        use dspc::directed::build::rebuild_directed_index;
        use dspc::directed::DirectedRankMap;

        let n = 18usize;
        let g = dspc_graph::DirectedGraph::from_arcs(n, &arcs);
        let base: Vec<u32> = {
            let r = DirectedRankMap::build(&g, OrderingStrategy::Degree);
            (0..n as u32).map(|i| r.vertex(Rank(i)).0).collect()
        };
        let swaps = decode_swaps(&picks, n as u32);
        assert!(!swaps.is_empty(), "decode_swaps always yields at least one swap");
        let mut index = rebuild_directed_index(&g, DirectedRankMap::from_rank_order(&base));
        rerank_adjacent_directed(&g, &mut index, &swaps);
        index.check_invariants().unwrap();
        let mut order = base.clone();
        for &r in &swaps {
            order.swap(r.index(), r.index() + 1);
        }
        let fresh = rebuild_directed_index(&g, DirectedRankMap::from_rank_order(&order));
        prop_assert_eq!(&index, &fresh, "directed re-rank differs from rebuild");
        verify_directed_all_pairs(&g, &fresh).unwrap();
    }

    /// Weighted: sequential re-rank ≡ rebuild, oracle-checked.
    #[test]
    fn weighted_rerank_equals_rebuild(
        edges in proptest::collection::vec((0u32..16, 0u32..16, 1u32..7), 0..50),
        picks in proptest::collection::vec(0u32..1 << 16, 1..5),
    ) {
        use dspc::weighted::build::{build_weighted_index, rebuild_weighted_index};

        let n = 16usize;
        let edges: Vec<(u32, u32, u32)> = edges.into_iter().filter(|&(u, v, _)| u != v).collect();
        let g = dspc_graph::WeightedGraph::from_weighted_edges(n, &edges);
        let base = build_weighted_index(&g, OrderingStrategy::Degree).ranks().clone();
        let swaps = decode_swaps(&picks, n as u32);
        assert!(!swaps.is_empty(), "decode_swaps always yields at least one swap");
        let mut index = rebuild_weighted_index(&g, base.clone());
        rerank_adjacent_weighted(&g, &mut index, &swaps);
        index.check_invariants().unwrap();
        let fresh = rebuild_weighted_index(
            &g,
            RankMap::from_rank_order(&swapped_order(&base, &swaps), base.strategy()),
        );
        prop_assert_eq!(&index, &fresh, "weighted re-rank differs from rebuild");
        verify_weighted_all_pairs(&g, &fresh).unwrap();
    }

    /// The incremental [`StalenessTracker`] behind [`ManagedSpc`] stays
    /// equal to the one-shot [`degree_order_staleness`] recount across
    /// arbitrary edge-churn sequences (NEVER policy: no maintenance, so
    /// the order never moves under the tracker).
    #[test]
    fn tracked_staleness_matches_recount(
        g in graph_strategy(24),
        ops in proptest::collection::vec((0u32..24, 0u32..24, proptest::bool::ANY), 0..30),
    ) {
        let n = g.capacity() as u32;
        let mut managed = ManagedSpc::new(
            DynamicSpc::build(g, OrderingStrategy::Degree),
            MaintenancePolicy::NEVER,
        );
        for (a, b, insert) in ops {
            let (a, b) = (VertexId(a % n), VertexId(b % n));
            if a == b {
                continue;
            }
            let has = managed.inner().graph().has_edge(a, b);
            let update = if insert && !has {
                GraphUpdate::InsertEdge(a, b)
            } else if !insert && has {
                GraphUpdate::DeleteEdge(a, b)
            } else {
                continue;
            };
            managed.apply(update).unwrap();
            let recount = degree_order_staleness(
                managed.inner().graph(),
                managed.inner().index().ranks(),
            );
            prop_assert!(
                (managed.staleness() - recount).abs() < 1e-12,
                "tracker {} vs recount {}",
                managed.staleness(),
                recount
            );
        }
    }
}

/// Picks tier thresholds around a measured staleness value so `action`
/// lands exactly in the requested tier for that staleness.
fn policy_for(tier: MaintenanceAction, s: f64) -> MaintenancePolicy {
    let p = match tier {
        MaintenanceAction::LocalRerank => MaintenancePolicy::tiered(s / 2.0, s * 2.0, s * 4.0),
        MaintenanceAction::BatchedRerank => MaintenancePolicy::tiered(s / 4.0, s / 2.0, s * 2.0),
        MaintenanceAction::Rebuild => MaintenancePolicy::tiered(s / 8.0, s / 4.0, s / 2.0),
        MaintenanceAction::None => MaintenancePolicy::NEVER,
    };
    assert_eq!(p.action(1, s), tier, "threshold construction is off");
    p
}

/// One ManagedSpc per maintenance tier, all replaying the same churn
/// batch: each tier fires in its staleness band, drops the frozen query
/// snapshot, leaves the expected counter signature, and keeps the index
/// oracle-exact.
#[test]
fn tier_transitions_fire_and_invalidate_the_snapshot() {
    use dspc_graph::generators::random::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let g = barabasi_albert(80, 2, &mut rng);
    let batch: Vec<GraphUpdate> = dspc_bench::workload::churn_stream(&g, 1, 10, &mut rng).remove(0);

    // Measure the staleness the policy will see at decision time.
    let mut probe = ManagedSpc::new(
        DynamicSpc::build(g.clone(), OrderingStrategy::Degree),
        MaintenancePolicy::NEVER,
    );
    probe.apply_batch(&batch).unwrap();
    let s = probe.staleness();
    assert!(s > 0.0, "churn batch must perturb the degree order");

    for tier in [
        MaintenanceAction::LocalRerank,
        MaintenanceAction::BatchedRerank,
        MaintenanceAction::Rebuild,
    ] {
        let mut managed = ManagedSpc::new(
            DynamicSpc::build(g.clone(), OrderingStrategy::Degree),
            policy_for(tier, s),
        );
        managed.frozen_queries();
        assert!(managed.has_frozen_snapshot());
        managed.apply_batch(&batch).unwrap();
        assert!(
            !managed.has_frozen_snapshot(),
            "{tier:?} must drop the frozen snapshot"
        );
        let rr = managed.rerank_totals();
        match tier {
            MaintenanceAction::LocalRerank => {
                assert_eq!(managed.rebuilds(), 0);
                assert!(rr.rerank_swaps > 0, "local tier must swap");
                assert!(
                    rr.rerank_swaps <= managed.policy().local_swap_budget,
                    "local tier must respect its budget"
                );
            }
            MaintenanceAction::BatchedRerank => {
                assert_eq!(managed.rebuilds(), 0);
                assert!(
                    rr.rerank_swaps > managed.policy().local_swap_budget,
                    "batched tier must out-swap the local budget"
                );
            }
            MaintenanceAction::Rebuild => {
                assert_eq!(managed.rebuilds(), 1, "cliff tier must rebuild");
                assert_eq!(rr.rerank_swaps, 0);
                assert!(
                    managed.staleness() < s,
                    "rebuild must restore a fresh degree order"
                );
            }
            MaintenanceAction::None => unreachable!(),
        }
        verify_all_pairs(managed.inner().graph(), managed.inner().index()).unwrap();
    }
}

/// The batched tier's replan loop converges: with enough budget one
/// response drives tracked staleness down to the batched threshold even
/// when vertices are displaced by many rank positions.
#[test]
fn batched_tier_replans_until_threshold() {
    use dspc_graph::generators::random::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(0xF00D);
    let g = barabasi_albert(100, 3, &mut rng);
    let batch: Vec<GraphUpdate> = dspc_bench::workload::churn_stream(&g, 1, 12, &mut rng).remove(0);
    let mut managed = ManagedSpc::new(
        DynamicSpc::build(g, OrderingStrategy::Degree),
        MaintenancePolicy {
            batched_swap_budget: 4096,
            ..MaintenancePolicy::tiered(0.0, 1e-9, 0.99)
        },
    );
    managed.apply_batch(&batch).unwrap();
    assert_eq!(managed.rebuilds(), 0);
    assert!(
        managed.staleness() <= 1e-9,
        "replan loop must drive staleness to the batched threshold, got {}",
        managed.staleness()
    );
    // Fully de-staled order + exact repair ⇒ the index matches a fresh
    // degree-order rebuild's footprint (up to degree ties, which the two
    // orders may break differently).
    let fresh = DynamicSpc::build(managed.inner().graph().clone(), OrderingStrategy::Degree);
    let (a, b) = (
        managed.inner().index().num_entries(),
        fresh.index().num_entries(),
    );
    assert!(
        a.abs_diff(b) * 100 <= b,
        "re-ranked footprint {a} strays from rebuild-fresh {b}"
    );
    // And the planner has nothing left to do.
    assert!(
        plan_adjacent_swaps(managed.inner().graph(), managed.inner().index().ranks(), 16)
            .is_empty()
    );
}
