//! Property-based tests (proptest): for *arbitrary* random graphs and
//! *arbitrary* update sequences, every index variant must agree with its
//! brute-force oracle, and the core data structures must uphold their
//! invariants.

use dspc::label::{packed, LabelEntry, LabelSet, Rank};
use dspc::verify::verify_all_pairs;
use dspc::{DynamicSpc, OrderingStrategy};
use dspc_graph::traversal::bfs::BfsCounter;
use dspc_graph::traversal::bibfs::BiBfsCounter;
use dspc_graph::{UndirectedGraph, VertexId};
use proptest::prelude::*;

/// Strategy: a small random graph as (n, edge list).
fn graph_strategy(max_n: usize) -> impl Strategy<Value = UndirectedGraph> {
    (2usize..max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(3 * n))
            .prop_map(move |edges| UndirectedGraph::from_edges(n, &edges))
    })
}

/// One random topology update, encoded structurally so it can be decoded
/// against whatever the current graph looks like.
#[derive(Clone, Debug)]
enum Op {
    /// Insert the i-th available non-edge (mod count).
    Insert(usize),
    /// Delete the i-th existing edge (mod count).
    Delete(usize),
}

fn ops_strategy(len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..1 << 16).prop_map(Op::Insert),
            (0usize..1 << 16).prop_map(Op::Delete),
        ],
        0..=len,
    )
}

fn non_edges(g: &UndirectedGraph) -> Vec<(VertexId, VertexId)> {
    let mut out = Vec::new();
    let vs: Vec<VertexId> = g.vertices().collect();
    for (i, &u) in vs.iter().enumerate() {
        for &v in &vs[i + 1..] {
            if !g.has_edge(u, v) {
                out.push((u, v));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fresh builds answer exactly like counting BFS under any ordering.
    #[test]
    fn built_index_matches_bfs(g in graph_strategy(20), seed in 0u64..1000) {
        for strategy in [
            OrderingStrategy::Degree,
            OrderingStrategy::Identity,
            OrderingStrategy::Random(seed),
        ] {
            let index = dspc::build_index(&g, strategy);
            index.check_invariants().unwrap();
            verify_all_pairs(&g, &index).unwrap();
        }
    }

    /// A maintained index stays exact through any insert/delete sequence.
    #[test]
    fn maintained_index_matches_bfs_after_any_stream(
        g in graph_strategy(16),
        ops in ops_strategy(12),
    ) {
        let mut dspc = DynamicSpc::build(g, OrderingStrategy::Degree);
        for op in ops {
            match op {
                Op::Insert(i) => {
                    let pool = non_edges(dspc.graph());
                    if pool.is_empty() { continue; }
                    let (a, b) = pool[i % pool.len()];
                    dspc.insert_edge(a, b).unwrap();
                }
                Op::Delete(i) => {
                    let m = dspc.graph().num_edges();
                    if m == 0 { continue; }
                    let (a, b) = dspc.graph().nth_edge(i % m).unwrap();
                    dspc.delete_edge(a, b).unwrap();
                }
            }
            dspc.index().check_invariants().unwrap();
        }
        verify_all_pairs(dspc.graph(), dspc.index()).unwrap();
    }

    /// Bidirectional BFS counts exactly like unidirectional BFS.
    #[test]
    fn bibfs_equals_bfs(g in graph_strategy(24), s in 0u32..24, t in 0u32..24) {
        let cap = g.capacity() as u32;
        let (s, t) = (VertexId(s % cap), VertexId(t % cap));
        let mut bfs = BfsCounter::new(g.capacity());
        let mut bibfs = BiBfsCounter::new(g.capacity());
        prop_assert_eq!(bibfs.count(&g, s, t), bfs.count(&g, s, t));
    }

    /// Packed 64-bit labels round-trip all in-range values and saturate
    /// out-of-range counts.
    #[test]
    fn packed_label_round_trip(
        hub in 0u32..=packed::MAX_HUB,
        dist in 0u32..=packed::MAX_DIST,
        count in proptest::num::u64::ANY,
    ) {
        let e = LabelEntry::new(Rank(hub), dist, count);
        let p = packed::pack(e).unwrap();
        let back = packed::unpack(p);
        prop_assert_eq!(back.hub, e.hub);
        prop_assert_eq!(back.dist, e.dist);
        prop_assert_eq!(back.count, count.min(packed::MAX_COUNT));
    }

    /// LabelSet behaves like a sorted map keyed by hub rank.
    #[test]
    fn label_set_is_a_sorted_map(
        ops in proptest::collection::vec((0u32..50, 0u32..100, 1u64..500, proptest::bool::ANY), 0..60)
    ) {
        let mut ls = LabelSet::new();
        let mut model = std::collections::BTreeMap::new();
        for (hub, dist, count, remove) in ops {
            if remove {
                let got = ls.remove(Rank(hub));
                let want = model.remove(&hub);
                prop_assert_eq!(got.map(|e| (e.dist, e.count)), want);
            } else {
                ls.upsert(LabelEntry::new(Rank(hub), dist, count));
                model.insert(hub, (dist, count));
            }
            prop_assert!(ls.is_sorted_strict());
            prop_assert_eq!(ls.len(), model.len());
        }
        for (hub, (dist, count)) in model {
            let e = ls.get(Rank(hub)).unwrap();
            prop_assert_eq!((e.dist, e.count), (dist, count));
        }
    }

    /// Index serialization round-trips any freshly built index.
    #[test]
    fn serialization_round_trip(g in graph_strategy(20)) {
        let index = dspc::build_index(&g, OrderingStrategy::Degree);
        let bytes = dspc::serialize::encode_index(&index);
        let back = dspc::serialize::decode_index(&bytes).unwrap();
        for s in g.vertices() {
            for t in g.vertices() {
                prop_assert_eq!(
                    dspc::spc_query(&index, s, t),
                    dspc::spc_query(&back, s, t)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The weighted index agrees with counting Dijkstra through random
    /// weight mutations (insert / delete / increase / decrease).
    #[test]
    fn weighted_index_matches_dijkstra(
        g in graph_strategy(12),
        weights in proptest::collection::vec(1u32..6, 40),
        muts in proptest::collection::vec((0usize..1 << 12, 1u32..8), 0..6),
    ) {
        use dspc::weighted::DynamicWeightedSpc;
        use dspc_graph::traversal::dijkstra::DijkstraCounter;
        let triples: Vec<(u32, u32, u32)> = g
            .edges()
            .enumerate()
            .map(|(i, (u, v))| (u.0, v.0, weights[i % weights.len()]))
            .collect();
        let wg = dspc_graph::WeightedGraph::from_weighted_edges(g.capacity(), &triples);
        let mut d = DynamicWeightedSpc::build(wg, OrderingStrategy::Degree);
        for (pick, w) in muts {
            let edges: Vec<_> = d.graph().edges().collect();
            if edges.is_empty() { continue; }
            let (a, b, _) = edges[pick % edges.len()];
            if pick % 3 == 0 {
                d.delete_edge(a, b).unwrap();
            } else {
                d.set_weight(a, b, w).unwrap();
            }
        }
        let mut dj = DijkstraCounter::new(d.graph().capacity());
        for s in d.graph().vertices() {
            for t in d.graph().vertices() {
                prop_assert_eq!(d.query(s, t), dj.count(d.graph(), s, t));
            }
        }
        dspc::verify::verify_weighted_all_pairs(d.graph(), d.index()).unwrap();
    }

    /// The directed index agrees with directed BFS through arc streams.
    #[test]
    fn directed_index_matches_dbfs(
        n in 3usize..12,
        arcs in proptest::collection::vec((0u32..12, 0u32..12), 0..40),
        muts in proptest::collection::vec((0usize..1 << 12, proptest::bool::ANY), 0..6),
    ) {
        use dspc::directed::DynamicDirectedSpc;
        use dspc_graph::traversal::dbfs::DirectedBfsCounter;
        let arcs: Vec<(u32, u32)> = arcs
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = dspc_graph::DirectedGraph::from_arcs(n, &arcs);
        let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Degree);
        for (pick, insert) in muts {
            if insert {
                // Pick a missing arc.
                let mut candidates = Vec::new();
                for u in 0..n as u32 {
                    for v in 0..n as u32 {
                        if u != v && !d.graph().has_arc(VertexId(u), VertexId(v)) {
                            candidates.push((u, v));
                        }
                    }
                }
                if candidates.is_empty() { continue; }
                let (a, b) = candidates[pick % candidates.len()];
                d.insert_arc(VertexId(a), VertexId(b)).unwrap();
            } else {
                let arcs: Vec<_> = d.graph().arcs().collect();
                if arcs.is_empty() { continue; }
                let (a, b) = arcs[pick % arcs.len()];
                d.delete_arc(a, b).unwrap();
            }
        }
        let mut bfs = DirectedBfsCounter::new(d.graph().capacity());
        for s in d.graph().vertices() {
            for t in d.graph().vertices() {
                prop_assert_eq!(d.query(s, t), bfs.count(d.graph(), s, t));
            }
        }
        dspc::verify::verify_directed_all_pairs(d.graph(), d.index()).unwrap();
    }
}
