//! Fault injection: every scripted crash site in the durability protocol,
//! driven deterministically, with recovery proven *bit-identical* — same
//! answers, same maintenance counters — to a server that never crashed.
//!
//! The crash model is [`FaultPlan`]: an armed failpoint simulates `kill -9`
//! at its site (the operation errors, the server drops its journal handle,
//! the in-memory instance is abandoned). On-disk damage — torn final
//! records, bit flips — is inflicted directly on the WAL file via
//! [`current_wal_path`]. Reference servers run the identical scripted
//! stream in a second journal directory without crashing; equivalence
//! compares the full all-pairs answer table, the epoch clock, the engine's
//! update-pressure counter, and every `ServerStats` field except
//! `replayed_batches` (which by design counts only recovery work).

use dspc::dynamic::GraphUpdate;
use dspc::query::spc_query;
use dspc::shard::ShardedFlatIndex;
use dspc::{DynamicSpc, FlatIndex, MaintenanceThreads, OrderingStrategy, UpdateStats};
use dspc_graph::generators::random::barabasi_albert;
use dspc_graph::{UndirectedGraph, VertexId};
use dspc_serve::{
    current_wal_path, EpochServer, Failpoint, FaultPlan, JournalError, RotateError,
    RotationFailure, ServeConfig, ServingEngine,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

const N: u32 = 40;
const CFG: ServeConfig = ServeConfig { shards: 2 };

fn base_graph() -> UndirectedGraph {
    barabasi_albert(N as usize, 3, &mut StdRng::seed_from_u64(0xFA117))
}

fn engine() -> DynamicSpc {
    let mut e = DynamicSpc::build(base_graph(), OrderingStrategy::Degree);
    e.set_maintenance_threads(MaintenanceThreads::Fixed(2));
    e
}

/// Deterministic valid-by-construction batches: each deletes one existing
/// edge and inserts one absent edge, tracked against a shadow graph.
fn scripted_batches(count: usize) -> Vec<Vec<GraphUpdate>> {
    let mut shadow = base_graph();
    let mut batches = Vec::new();
    for i in 0..count {
        let (da, db) = shadow
            .nth_edge((i * 7) % shadow.num_edges())
            .expect("shadow graph keeps its edges");
        let mut insert = None;
        'outer: for a in 0..N {
            for b in (a + 1)..N {
                let (a, b) = (VertexId(a), VertexId(b));
                if !shadow.has_edge(a, b) && (da, db) != (a, b) && (da, db) != (b, a) {
                    insert = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (ia, ib) = insert.expect("shadow graph is not complete");
        shadow.delete_edge(da, db).unwrap();
        shadow.insert_edge(ia, ib).unwrap();
        batches.push(vec![
            GraphUpdate::DeleteEdge(da, db),
            GraphUpdate::InsertEdge(ia, ib),
        ]);
    }
    batches
}

/// A fresh, empty journal directory unique to `name` (tests run in one
/// process but must not share directories).
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dspc_fault_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A journaled server that ran `rotated` scripted batches (one rotation
/// each) and then submitted `pending` more without rotating — the
/// never-crashed reference for most scenarios.
fn journaled_reference(
    dir: &PathBuf,
    rotated: &[Vec<GraphUpdate>],
    pending: &[Vec<GraphUpdate>],
) -> EpochServer<DynamicSpc> {
    let mut server = EpochServer::with_journal(engine(), CFG, dir).expect("fresh journal dir");
    for batch in rotated {
        server.submit(batch.clone()).expect("journaled submit");
        server.rotate().expect("scripted batch is valid");
    }
    for batch in pending {
        server.submit(batch.clone()).expect("journaled submit");
    }
    server
}

/// The bit-identical claim: answers, epoch clock, pending depth, engine
/// update pressure, and all stats except `replayed_batches` must match.
fn assert_bit_identical(recovered: &EpochServer<DynamicSpc>, reference: &EpochServer<DynamicSpc>) {
    assert_eq!(recovered.epoch(), reference.epoch(), "epoch clock");
    assert_eq!(
        recovered.pending_updates(),
        reference.pending_updates(),
        "pending buffer depth"
    );
    assert_eq!(
        recovered.engine().updates_since_build(),
        reference.engine().updates_since_build(),
        "engine update pressure"
    );
    let (a, b) = (recovered.stats(), reference.stats());
    assert_eq!(a.rotations, b.rotations, "rotations");
    assert_eq!(a.updates_applied, b.updates_applied, "updates_applied");
    assert_eq!(a.rejected_updates, b.rejected_updates, "rejected_updates");
    assert_eq!(
        a.quarantined_rotations, b.quarantined_rotations,
        "quarantined_rotations"
    );
    if reference.is_journaled() {
        assert_eq!(a.journal_bytes, b.journal_bytes, "journal_bytes");
    }
    for s in 0..N {
        for t in 0..N {
            let (s, t) = (VertexId(s), VertexId(t));
            assert_eq!(
                recovered.engine().query_live(s, t),
                reference.engine().query_live(s, t),
                "answer diverged at {s:?} -> {t:?}"
            );
        }
    }
}

/// Both servers apply one more scripted batch and must produce identical
/// maintenance counters — the engines are equivalent in behavior, not just
/// in current answers.
fn assert_next_rotation_identical(
    recovered: &mut EpochServer<DynamicSpc>,
    reference: &mut EpochServer<DynamicSpc>,
    batch: &[GraphUpdate],
) {
    recovered.submit(batch.to_vec()).expect("submit");
    reference.submit(batch.to_vec()).expect("submit");
    let ra = recovered.rotate().expect("valid batch");
    let rb = reference.rotate().expect("valid batch");
    assert_eq!(ra.epoch, rb.epoch);
    // Work stealing and interference probing are scheduling-dependent;
    // every other counter must match bit for bit.
    let scheduling_free = |stats: Option<UpdateStats>| {
        stats.map(|mut s| {
            s.counters.steal_events = 0;
            s.counters.interference_probes = 0;
            s
        })
    };
    let (sa, sb): (Option<UpdateStats>, Option<UpdateStats>) =
        (scheduling_free(ra.applied), scheduling_free(rb.applied));
    assert_eq!(sa, sb, "post-recovery maintenance counters diverged");
    assert_bit_identical(recovered, reference);
}

#[test]
fn clean_restart_replays_the_full_wal() {
    let script = scripted_batches(5);
    let dir = scratch_dir("clean_restart");
    let ref_dir = scratch_dir("clean_restart_ref");

    // Rotate 3 batches, leave the 4th durable-but-pending, then abandon
    // the server (a kill between syncs: everything acknowledged is on
    // disk, the process is gone).
    let crashed = journaled_reference(&dir, &script[..3], &script[3..4]);
    drop(crashed);

    let (mut recovered, report) = EpochServer::recover(&dir, CFG).expect("recovery");
    assert_eq!(report.generation, 1);
    assert_eq!(report.checkpoint_epoch, 0);
    assert_eq!(report.resumed_epoch, 3);
    assert_eq!(report.replayed_rotations, 3);
    assert_eq!(report.replayed_batches, 4);
    assert_eq!(report.restored_pending_updates, script[3].len());
    assert_eq!(report.quarantined_updates_skipped, 0);
    assert_eq!(report.dropped_tail_bytes, 0);
    assert_eq!(recovered.stats().replayed_batches, 4);

    let mut reference = journaled_reference(&ref_dir, &script[..3], &script[3..4]);
    assert_bit_identical(&recovered, &reference);
    assert_next_rotation_identical(&mut recovered, &mut reference, &script[4]);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn kill_before_append_loses_only_the_unacknowledged_batch() {
    let script = scripted_batches(4);
    let dir = scratch_dir("kill_before_append");
    let ref_dir = scratch_dir("kill_before_append_ref");

    let mut crashed = journaled_reference(&dir, &script[..2], &[]);
    crashed.arm_faults(FaultPlan::new().inject(Failpoint::KillBeforeAppend));
    let err = crashed.submit(script[2].clone()).unwrap_err();
    assert!(matches!(
        err.error,
        JournalError::InjectedCrash(Failpoint::KillBeforeAppend)
    ));
    assert_eq!(err.rejected, script[2], "the batch comes back un-buffered");
    assert!(
        !crashed.is_journaled(),
        "the simulated kill dropped the journal"
    );
    drop(crashed);

    // The batch was never acknowledged as durable, so the reference never
    // saw it: recovery loses exactly that batch and nothing else.
    let (recovered, report) = EpochServer::recover(&dir, CFG).expect("recovery");
    assert_eq!(report.replayed_rotations, 2);
    assert_eq!(report.restored_pending_updates, 0);
    let reference = journaled_reference(&ref_dir, &script[..2], &[]);
    assert_bit_identical(&recovered, &reference);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn kill_after_append_preserves_the_batch_as_pending() {
    let script = scripted_batches(4);
    let dir = scratch_dir("kill_after_append");
    let ref_dir = scratch_dir("kill_after_append_ref");

    let mut crashed = journaled_reference(&dir, &script[..2], &[]);
    crashed.arm_faults(FaultPlan::new().inject(Failpoint::KillAfterAppend));
    let err = crashed.submit(script[2].clone()).unwrap_err();
    assert!(matches!(
        err.error,
        JournalError::InjectedCrash(Failpoint::KillAfterAppend)
    ));
    drop(crashed);

    // The append hit disk before the kill: the batch is durable and must
    // come back as pending — acknowledged-implies-durable.
    let (mut recovered, report) = EpochServer::recover(&dir, CFG).expect("recovery");
    assert_eq!(report.replayed_rotations, 2);
    assert_eq!(report.restored_pending_updates, script[2].len());
    let mut reference = journaled_reference(&ref_dir, &script[..2], &script[2..3]);
    assert_bit_identical(&recovered, &reference);

    // Rotating the restored batch lands both servers on the same epoch.
    let ra = recovered.rotate().expect("restored batch is valid");
    let rb = reference.rotate().expect("pending batch is valid");
    assert_eq!((ra.epoch, ra.applied), (rb.epoch, rb.applied));
    assert_bit_identical(&recovered, &reference);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn checkpoint_truncates_the_wal_and_recovery_boots_from_it() {
    let script = scripted_batches(5);
    let dir = scratch_dir("checkpoint");
    let ref_dir = scratch_dir("checkpoint_ref");

    let mut crashed = journaled_reference(&dir, &script[..2], &[]);
    assert_eq!(crashed.checkpoint().expect("checkpoint"), 2);
    assert_eq!(crashed.journal_generation(), Some(2));
    // One more rotation after the checkpoint, then crash.
    crashed.submit(script[2].clone()).expect("journaled submit");
    crashed.rotate().expect("valid batch");
    drop(crashed);

    let (mut recovered, report) = EpochServer::recover(&dir, CFG).expect("recovery");
    assert_eq!(report.generation, 2);
    assert_eq!(
        report.checkpoint_epoch, 2,
        "snapshot carries the epoch clock"
    );
    assert_eq!(
        report.replayed_rotations, 1,
        "only post-checkpoint work replays"
    );
    assert_eq!(report.resumed_epoch, 3);

    // Reference: same stream, checkpoint included (checkpoints write
    // journal bytes, so stats only match when both servers checkpoint).
    let mut reference = journaled_reference(&ref_dir, &script[..2], &[]);
    reference.checkpoint().expect("checkpoint");
    reference
        .submit(script[2].clone())
        .expect("journaled submit");
    reference.rotate().expect("valid batch");
    assert_bit_identical(&recovered, &reference);
    assert_next_rotation_identical(&mut recovered, &mut reference, &script[3]);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn kill_mid_checkpoint_keeps_the_old_generation_authoritative() {
    let script = scripted_batches(4);
    let dir = scratch_dir("kill_mid_checkpoint");
    let ref_dir = scratch_dir("kill_mid_checkpoint_ref");

    let mut crashed = journaled_reference(&dir, &script[..3], &[]);
    crashed.arm_faults(FaultPlan::new().inject(Failpoint::KillAfterStateFile));
    let err = crashed.checkpoint().unwrap_err();
    assert!(matches!(
        err,
        JournalError::InjectedCrash(Failpoint::KillAfterStateFile)
    ));
    drop(crashed);
    // The orphan next-generation state file is on disk but uncommitted.
    assert!(dir.join("state-2.dspc").exists());

    let (recovered, report) = EpochServer::recover(&dir, CFG).expect("recovery");
    assert_eq!(report.generation, 1, "MANIFEST never moved");
    assert_eq!(report.replayed_rotations, 3, "the full WAL still replays");
    let reference = journaled_reference(&ref_dir, &script[..3], &[]);
    assert_bit_identical(&recovered, &reference);
    assert!(
        !dir.join("state-2.dspc").exists(),
        "recovery cleans the orphan generation"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn kill_after_manifest_commits_the_new_generation() {
    let script = scripted_batches(4);
    let dir = scratch_dir("kill_after_manifest");

    let mut crashed = journaled_reference(&dir, &script[..3], &[]);
    let stats_at_crash = *crashed.stats();
    crashed.arm_faults(FaultPlan::new().inject(Failpoint::KillAfterManifest));
    let err = crashed.checkpoint().unwrap_err();
    assert!(matches!(
        err,
        JournalError::InjectedCrash(Failpoint::KillAfterManifest)
    ));
    drop(crashed);
    // Old generation's files still on disk (cleanup never ran)…
    assert!(dir.join("state-1.dspc").exists());

    let (recovered, report) = EpochServer::<DynamicSpc>::recover(&dir, CFG).expect("recovery");
    // …but the MANIFEST rename was the commit point: generation 2 wins.
    assert_eq!(report.generation, 2);
    assert_eq!(
        report.replayed_rotations, 0,
        "fresh WAL has nothing to replay"
    );
    assert_eq!(report.checkpoint_epoch, 3);
    assert_eq!(recovered.epoch(), 3);
    assert_eq!(recovered.stats().rotations, stats_at_crash.rotations);
    assert_eq!(
        recovered.stats().updates_applied,
        stats_at_crash.updates_applied
    );
    assert!(!dir.join("state-1.dspc").exists(), "old generation cleaned");

    // Answers survive the generation switch bit-for-bit.
    let reference = journaled_reference(&scratch_dir("kam_ref"), &script[..3], &[]);
    for s in 0..N {
        for t in 0..N {
            let (s, t) = (VertexId(s), VertexId(t));
            assert_eq!(
                recovered.engine().query_live(s, t),
                reference.engine().query_live(s, t)
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(scratch_dir("kam_ref"));
}

#[test]
fn torn_final_record_is_dropped_not_fatal() {
    let script = scripted_batches(3);
    let dir = scratch_dir("torn_tail");
    let ref_dir = scratch_dir("torn_tail_ref");

    // Two committed epochs, then a durable pending batch whose record we
    // tear mid-write (a real torn append: the kill landed inside the
    // kernel's writeback).
    let crashed = journaled_reference(&dir, &script[..2], &script[2..3]);
    drop(crashed);
    let wal = current_wal_path(&dir).expect("manifest is readable");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

    let (mut recovered, report) = EpochServer::recover(&dir, CFG).expect("torn tail recovers");
    assert_eq!(report.replayed_rotations, 2, "committed epochs are intact");
    assert_eq!(
        report.restored_pending_updates, 0,
        "the torn record is dropped"
    );
    assert!(report.dropped_tail_bytes > 0);
    // Equivalent to a server that never submitted the torn batch.
    let mut reference = journaled_reference(&ref_dir, &script[..2], &[]);
    assert_bit_identical(&recovered, &reference);
    // The WAL was truncated back to its valid prefix: appends keep working.
    assert_next_rotation_identical(&mut recovered, &mut reference, &script[2]);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn final_record_bit_flip_is_dropped_but_mid_file_damage_is_fatal() {
    let script = scripted_batches(2);
    let dir = scratch_dir("bit_flip");

    // WAL layout here: checkpoint header record, batch record, epoch
    // marker, batch record, epoch marker.
    let crashed = journaled_reference(&dir, &script[..2], &[]);
    drop(crashed);
    let wal = current_wal_path(&dir).expect("manifest is readable");
    let pristine = std::fs::read(&wal).unwrap();

    // Flip a bit in the FINAL record (the last epoch marker): that record
    // is dropped, which demotes the second batch from committed to
    // pending — never silently applied, never lost.
    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x10;
    std::fs::write(&wal, &flipped).unwrap();
    let (recovered, report) =
        EpochServer::<DynamicSpc>::recover(&dir, CFG).expect("final-record damage recovers");
    assert_eq!(report.replayed_rotations, 1);
    assert_eq!(report.restored_pending_updates, script[1].len());
    assert!(report.dropped_tail_bytes > 0);
    assert_eq!(recovered.epoch(), 1);
    drop(recovered);

    // Mid-file damage is NOT a tear — it means acknowledged history is
    // gone, and recovery must refuse loudly rather than replay around it.
    // Byte 90 sits inside the first batch record's payload (the header
    // record is 12 + 65 bytes, the next record header is 12 more).
    let mut flipped = pristine.clone();
    flipped[90] ^= 0x10;
    std::fs::write(&wal, &flipped).unwrap();
    match EpochServer::<DynamicSpc>::recover(&dir, CFG) {
        Err(JournalError::Corrupt { section, offset }) => {
            assert_eq!(section, "wal-record");
            assert!(offset > 0, "corruption is located, not just reported");
        }
        Err(other) => panic!("expected wal-record corruption, got {other:?}"),
        Ok(_) => panic!("mid-file corruption must be fatal"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantined_batches_are_voided_in_the_wal_and_skipped_by_replay() {
    let script = scripted_batches(3);
    let dir = scratch_dir("quarantine_replay");
    let ref_dir = scratch_dir("quarantine_replay_ref");

    let run = |dir: &PathBuf| -> EpochServer<DynamicSpc> {
        let mut server = journaled_reference(dir, &script[..1], &[]);
        // A poisoned batch: its duplicate insert fails validation AFTER
        // the batch was journaled. The quarantine record voids it.
        let (ea, eb) = base_graph().nth_edge(0).unwrap();
        let poisoned = vec![
            GraphUpdate::InsertEdge(ea, eb),
            GraphUpdate::InsertEdge(VertexId(0), VertexId(1)),
        ];
        server.submit(poisoned.clone()).expect("journaled submit");
        let err = server.rotate().unwrap_err();
        assert!(matches!(err.kind, RotationFailure::Invalid(_)));
        assert_eq!(err.rejected, poisoned, "quarantined batch is handed back");
        // Good work continues after the quarantine.
        server.submit(script[1].clone()).expect("journaled submit");
        server.rotate().expect("valid batch");
        server
    };

    let crashed = run(&dir);
    let stats_at_crash = *crashed.stats();
    assert_eq!(stats_at_crash.quarantined_rotations, 1);
    assert_eq!(stats_at_crash.rejected_updates, 2);
    drop(crashed);

    let (mut recovered, report) = EpochServer::recover(&dir, CFG).expect("recovery");
    assert_eq!(
        report.quarantined_updates_skipped, 2,
        "replay skips exactly the voided batch"
    );
    assert_eq!(report.replayed_rotations, 2);
    let mut reference = run(&ref_dir);
    assert_bit_identical(&recovered, &reference);
    assert_next_rotation_identical(&mut recovered, &mut reference, &script[2]);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn with_journal_refuses_an_initialized_directory() {
    let dir = scratch_dir("refuse_reinit");
    let server = EpochServer::with_journal(engine(), CFG, &dir).expect("fresh dir");
    drop(server);
    match EpochServer::with_journal(engine(), CFG, &dir) {
        Err(JournalError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::AlreadyExists)
        }
        Err(other) => panic!("expected AlreadyExists, got {other:?}"),
        Ok(_) => panic!("re-initializing an existing journal must fail"),
    }
    // And recovering a directory that was never initialized fails too.
    let empty = scratch_dir("refuse_empty");
    std::fs::create_dir_all(&empty).unwrap();
    assert!(EpochServer::<DynamicSpc>::recover(&empty, CFG).is_err());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn threaded_shutdown_flushes_the_journal() {
    let script = scripted_batches(3);
    let dir = scratch_dir("threaded_shutdown");
    let ref_dir = scratch_dir("threaded_shutdown_ref");

    let server = EpochServer::with_journal(engine(), CFG, &dir).expect("fresh dir");
    let handle = server.spawn();
    handle.submit(script[0].clone()).expect("writer is alive");
    handle.rotate().expect("valid batch");
    handle.submit(script[1].clone()).expect("writer is alive");
    // Shutdown syncs the journal; the returned server is then abandoned.
    let server = handle.shutdown().expect("clean shutdown");
    drop(server);

    let (recovered, report) = EpochServer::recover(&dir, CFG).expect("recovery");
    assert_eq!(report.replayed_rotations, 1);
    assert_eq!(report.restored_pending_updates, script[1].len());
    let reference = journaled_reference(&ref_dir, &script[..1], &script[1..2]);
    assert_bit_identical(&recovered, &reference);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// A [`DynamicSpc`] that panics when asked to apply a batch containing the
/// sentinel self-edge on `u32::MAX` — the "engine bug" the containment
/// story must survive.
struct PanicEngine(DynamicSpc);

const SENTINEL: GraphUpdate = GraphUpdate::InsertEdge(VertexId(u32::MAX), VertexId(u32::MAX));

impl ServingEngine for PanicEngine {
    type Snapshot = ShardedFlatIndex;
    type Update = GraphUpdate;

    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> dspc_graph::Result<UpdateStats> {
        if updates.contains(&SENTINEL) {
            panic!("injected engine panic");
        }
        self.0.apply_batch(updates)
    }

    fn freeze(&self, shards: usize) -> ShardedFlatIndex {
        ShardedFlatIndex::from_flat(&FlatIndex::freeze(self.0.index()), shards)
    }

    fn query_live(&self, s: VertexId, t: VertexId) -> dspc::QueryResult {
        spc_query(self.0.index(), s, t)
    }
}

#[test]
fn readers_keep_serving_across_a_panicked_rotation() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let script = scripted_batches(2);
    let server = EpochServer::new(PanicEngine(engine()), CFG);
    let reader = server.reader();
    let handle = server.spawn();

    // One good epoch first, so readers have non-trivial state pinned.
    handle.submit(script[0].clone()).expect("writer is alive");
    handle.rotate().expect("valid batch");

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop;
        let joins: Vec<_> = (0..3)
            .map(|_| {
                let mut reader = reader.fork();
                scope.spawn(move || {
                    assert_eq!(reader.refresh(), 1);
                    let (_, want) = reader.query(VertexId(0), VertexId(5));
                    let mut served = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        // The quarantined rotation happens underneath these
                        // queries; the pinned epoch-1 snapshot must answer
                        // identically throughout — no panic, no new epoch.
                        let (epoch, got) = reader.query(VertexId(0), VertexId(5));
                        assert_eq!(epoch, 1, "no epoch may be published by a failed rotation");
                        assert_eq!(got, want);
                        served += 1;
                    }
                    served
                })
            })
            .collect();

        // The poisoned batch panics the engine mid-rotation. The panic is
        // contained: the caller gets the quarantined batch back, the
        // writer thread survives, readers never notice.
        handle
            .submit(vec![SENTINEL, script[1][0]])
            .expect("writer is alive");
        match handle.rotate() {
            Err(RotateError::Rotation(e)) => {
                assert!(matches!(e.kind, RotationFailure::Panicked(_)));
                assert_eq!(e.rejected.len(), 2, "whole batch quarantined, not dropped");
            }
            other => panic!("expected a contained panic, got {other:?}"),
        }
        stop.store(true, Ordering::Release);
        for j in joins {
            assert!(j.join().expect("reader thread must not panic") > 0);
        }
    });

    // The writer is still alive and healthy: the repaired batch applies.
    handle.submit(script[1].clone()).expect("writer is alive");
    assert_eq!(handle.rotate().expect("valid batch").epoch, 2);
    let server = handle.shutdown().expect("clean shutdown");
    assert_eq!(server.stats().quarantined_rotations, 1);
    assert_eq!(server.stats().rejected_updates, 2);
    assert_eq!(server.stats().rotations, 2);
}
