//! The serving layer's headline correctness harness: reader threads hammer
//! queries while the writer thread rotates epochs underneath them, and
//! **every** answer is checked — exactly, not probabilistically — against
//! the brute-force oracle of the epoch stamped on that answer.
//!
//! The trick that makes a concurrent test exact: the update script and the
//! per-epoch graphs are precomputed before any thread starts, and every
//! [`dspc_serve::Reader`] answer carries the epoch of the snapshot that
//! produced it. Whatever interleaving the scheduler produces, a stamped
//! answer `(e, r)` is only correct if `r` equals the oracle count on the
//! epoch-`e` graph — so the assertion is deterministic even though the
//! schedule is not. Each reader additionally asserts that the epochs it
//! observes never move backwards (the publication chain only grows
//! forward).
//!
//! Covered here: the undirected facade at 1, 4, and 8 reader threads, and
//! the directed and weighted facades at 4 — all three variants rotate
//! through a writer running on its own thread ([`dspc_serve::WriterHandle`]).

use std::sync::atomic::{AtomicBool, Ordering};

use dspc::directed::{ArcUpdate, DynamicDirectedSpc};
use dspc::dynamic::GraphUpdate;
use dspc::weighted::{DynamicWeightedSpc, WeightedUpdate};
use dspc::{DynamicSpc, OrderingStrategy};
use dspc_graph::generators::random::{
    barabasi_albert, erdos_renyi_gnm, random_orientation, random_weights,
};
use dspc_graph::traversal::bfs::BfsCounter;
use dspc_graph::traversal::dbfs::DirectedBfsCounter;
use dspc_graph::traversal::dijkstra::DijkstraCounter;
use dspc_graph::weighted::WDist;
use dspc_graph::{DirectedGraph, UndirectedGraph, VertexId, WeightedGraph};
use dspc_serve::{EpochServer, ServeConfig, ServingEngine, ServingSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPOCHS: usize = 6;
/// Queries every reader answers against the final epoch after the writer
/// is done (the mid-flight queries are as many as the schedule allows).
const FINAL_QUERIES: usize = 32;

/// A per-thread brute-force counter for one graph variant.
trait EpochOracle<G> {
    type Key: PartialEq + std::fmt::Debug;
    fn answer(&mut self, g: &G, s: VertexId, t: VertexId) -> Self::Key;
}

struct UndirectedOracle(BfsCounter);
impl EpochOracle<UndirectedGraph> for UndirectedOracle {
    type Key = Option<(u32, u64)>;
    fn answer(&mut self, g: &UndirectedGraph, s: VertexId, t: VertexId) -> Self::Key {
        self.0.count(g, s, t)
    }
}

struct DirectedOracle(DirectedBfsCounter);
impl EpochOracle<DirectedGraph> for DirectedOracle {
    type Key = Option<(u32, u64)>;
    fn answer(&mut self, g: &DirectedGraph, s: VertexId, t: VertexId) -> Self::Key {
        self.0.count(g, s, t)
    }
}

struct WeightedOracle(DijkstraCounter);
impl EpochOracle<WeightedGraph> for WeightedOracle {
    type Key = Option<(WDist, u64)>;
    fn answer(&mut self, g: &WeightedGraph, s: VertexId, t: VertexId) -> Self::Key {
        self.0.count(g, s, t)
    }
}

/// Shape of one harness run.
#[derive(Clone, Copy)]
struct HarnessConfig {
    num_readers: usize,
    shards: usize,
    n: u32,
    seed: u64,
}

/// Runs the concurrent harness: `cfg.num_readers` threads query and refresh
/// on their own schedule while the writer thread rotates through the
/// scripted `batches`; `graphs[e]` is the graph as of epoch `e` (the oracle
/// input for any answer stamped `e`).
fn run_harness<E, G, O>(
    engine: E,
    batches: &[Vec<E::Update>],
    graphs: &[G],
    cfg: HarnessConfig,
    make_oracle: &(impl Fn() -> O + Sync),
    key: impl Fn(<E::Snapshot as ServingSnapshot>::Answer) -> O::Key + Copy + Send + Sync,
) where
    E: ServingEngine,
    E::Update: std::fmt::Debug,
    G: Sync,
    O: EpochOracle<G>,
{
    assert_eq!(graphs.len(), batches.len() + 1, "one graph per epoch");
    let HarnessConfig {
        num_readers,
        shards,
        n,
        seed,
    } = cfg;
    let total_epochs = batches.len() as u64;
    let total_updates: u64 = batches.iter().map(|b| b.len() as u64).sum();

    let server = EpochServer::new(engine, ServeConfig { shards });
    let readers: Vec<_> = (0..num_readers).map(|_| server.reader()).collect();
    let handle = server.spawn();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop;
        let joins: Vec<_> = readers
            .into_iter()
            .enumerate()
            .map(|(i, mut reader)| {
                scope.spawn(move || {
                    let mut oracle = make_oracle();
                    let mut rng = StdRng::seed_from_u64(seed ^ (0x9E3779B9 + i as u64));
                    let mut last_epoch = reader.epoch();
                    // Phase 1: hammer whatever snapshot is pinned while the
                    // writer rotates underneath.
                    while !stop.load(Ordering::Acquire) {
                        if rng.gen_range(0..4) == 0 {
                            let e = reader.refresh();
                            assert!(e >= last_epoch, "refresh moved the epoch backwards");
                            last_epoch = e;
                        }
                        let s = VertexId(rng.gen_range(0..n));
                        let t = VertexId(rng.gen_range(0..n));
                        let (stamp, answer) = reader.query(s, t);
                        assert!(stamp >= last_epoch, "observed epochs must be monotone");
                        last_epoch = stamp;
                        assert_eq!(
                            key(answer),
                            oracle.answer(&graphs[stamp as usize], s, t),
                            "answer must match the stamped epoch's oracle \
                             (epoch {stamp}, {s:?} -> {t:?})"
                        );
                    }
                    // Phase 2: drain to the final epoch and verify there.
                    assert_eq!(reader.refresh(), total_epochs);
                    for _ in 0..FINAL_QUERIES {
                        let s = VertexId(rng.gen_range(0..n));
                        let t = VertexId(rng.gen_range(0..n));
                        let (stamp, answer) = reader.query(s, t);
                        assert_eq!(stamp, total_epochs, "nothing newer exists");
                        assert_eq!(key(answer), oracle.answer(&graphs[stamp as usize], s, t));
                    }
                    reader.queries_served()
                })
            })
            .collect();

        for batch in batches {
            handle
                .submit(batch.clone())
                .expect("writer thread is alive");
            let report = handle.rotate().expect("scripted batch is valid");
            assert_eq!(report.batched_updates, batch.len());
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        let served: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        assert!(
            served >= (num_readers * FINAL_QUERIES) as u64,
            "every reader must have answered its final-epoch batch"
        );
    });

    let server = handle.shutdown().expect("writer thread exits cleanly");
    assert_eq!(server.epoch(), total_epochs);
    assert_eq!(server.stats().rotations, total_epochs);
    assert_eq!(server.stats().updates_applied, total_updates);
}

/// Scripted undirected epochs: 2 deletions + 3 insertions per batch,
/// sampled against the evolving shadow graph.
fn undirected_script(
    n: u32,
    seed: u64,
) -> (UndirectedGraph, Vec<Vec<GraphUpdate>>, Vec<UndirectedGraph>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = barabasi_albert(n as usize, 3, &mut rng);
    let mut shadow = base.clone();
    let mut graphs = vec![base.clone()];
    let mut batches = Vec::new();
    for _ in 0..EPOCHS {
        let mut batch = Vec::new();
        let edges: Vec<_> = shadow.edges().collect();
        let mut picked = std::collections::HashSet::new();
        while picked.len() < 2 {
            let i = rng.gen_range(0..edges.len());
            if picked.insert(i) {
                let (a, b) = edges[i];
                batch.push(GraphUpdate::DeleteEdge(a, b));
                shadow.delete_edge(a, b).unwrap();
            }
        }
        let mut inserted = 0;
        while inserted < 3 {
            let a = VertexId(rng.gen_range(0..n));
            let b = VertexId(rng.gen_range(0..n));
            // Skip pairs deleted this epoch too: the batch must be a pure
            // net effect (no delete+reinsert of the same edge).
            if a != b
                && !shadow.has_edge(a, b)
                && !batch.iter().any(|u| {
                    matches!(u, GraphUpdate::DeleteEdge(x, y)
                        if (*x, *y) == (a, b) || (*x, *y) == (b, a))
                })
            {
                batch.push(GraphUpdate::InsertEdge(a, b));
                shadow.insert_edge(a, b).unwrap();
                inserted += 1;
            }
        }
        batches.push(batch);
        graphs.push(shadow.clone());
    }
    (base, batches, graphs)
}

/// Scripted directed epochs: 2 arc deletions + 2 arc insertions per batch.
fn directed_script(n: u32, seed: u64) -> (DirectedGraph, Vec<Vec<ArcUpdate>>, Vec<DirectedGraph>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let undirected = erdos_renyi_gnm(n as usize, 3 * n as usize, &mut rng);
    let base = random_orientation(&undirected, 0.25, &mut rng);
    let mut shadow = base.clone();
    let mut graphs = vec![base.clone()];
    let mut batches = Vec::new();
    for _ in 0..EPOCHS {
        let mut batch = Vec::new();
        let arcs: Vec<_> = shadow.arcs().collect();
        let mut picked = std::collections::HashSet::new();
        while picked.len() < 2 {
            let i = rng.gen_range(0..arcs.len());
            if picked.insert(i) {
                let (a, b) = arcs[i];
                batch.push(ArcUpdate::DeleteArc(a, b));
                shadow.delete_arc(a, b).unwrap();
            }
        }
        let mut inserted = 0;
        while inserted < 2 {
            let a = VertexId(rng.gen_range(0..n));
            let b = VertexId(rng.gen_range(0..n));
            if a != b
                && !shadow.has_arc(a, b)
                && !batch
                    .iter()
                    .any(|u| matches!(u, ArcUpdate::DeleteArc(x, y) if (*x, *y) == (a, b)))
            {
                batch.push(ArcUpdate::InsertArc(a, b));
                shadow.insert_arc(a, b).unwrap();
                inserted += 1;
            }
        }
        batches.push(batch);
        graphs.push(shadow.clone());
    }
    (base, batches, graphs)
}

/// Scripted weighted epochs: 1 deletion, 1 weight change, and 2 weighted
/// insertions per batch.
fn weighted_script(
    n: u32,
    seed: u64,
) -> (WeightedGraph, Vec<Vec<WeightedUpdate>>, Vec<WeightedGraph>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let undirected = erdos_renyi_gnm(n as usize, 3 * n as usize, &mut rng);
    let base = random_weights(&undirected, 5, &mut rng);
    let mut shadow = base.clone();
    let mut graphs = vec![base.clone()];
    let mut batches = Vec::new();
    for _ in 0..EPOCHS {
        let mut batch = Vec::new();
        let edges: Vec<_> = shadow.edges().collect();
        let (da, db, _) = edges[rng.gen_range(0..edges.len())];
        batch.push(WeightedUpdate::DeleteEdge(da, db));
        shadow.delete_edge(da, db).unwrap();
        loop {
            let (a, b, w) = edges[rng.gen_range(0..edges.len())];
            if (a, b) != (da, db) {
                let w = w % 5 + 1;
                batch.push(WeightedUpdate::SetWeight(a, b, w));
                shadow.set_weight(a, b, w).unwrap();
                break;
            }
        }
        let mut inserted = 0;
        while inserted < 2 {
            let a = VertexId(rng.gen_range(0..n));
            let b = VertexId(rng.gen_range(0..n));
            if a != b && !shadow.has_edge(a, b) && (a, b) != (da, db) && (b, a) != (da, db) {
                let w = rng.gen_range(1..5);
                batch.push(WeightedUpdate::InsertEdge(a, b, w));
                shadow.insert_edge(a, b, w).unwrap();
                inserted += 1;
            }
        }
        batches.push(batch);
        graphs.push(shadow.clone());
    }
    (base, batches, graphs)
}

fn run_undirected(num_readers: usize) {
    let (base, batches, graphs) = undirected_script(48, 0xE90C);
    run_harness(
        DynamicSpc::build(base, OrderingStrategy::Degree),
        &batches,
        &graphs,
        HarnessConfig {
            num_readers,
            shards: 3,
            n: 48,
            seed: 0xE90C,
        },
        &|| UndirectedOracle(BfsCounter::new(48)),
        |r| r.as_option(),
    );
}

#[test]
fn undirected_one_reader() {
    run_undirected(1);
}

#[test]
fn undirected_four_readers() {
    run_undirected(4);
}

#[test]
fn undirected_eight_readers() {
    run_undirected(8);
}

#[test]
fn directed_four_readers() {
    let (base, batches, graphs) = directed_script(36, 0xD14);
    run_harness(
        DynamicDirectedSpc::build(base, OrderingStrategy::Degree),
        &batches,
        &graphs,
        HarnessConfig {
            num_readers: 4,
            shards: 1,
            n: 36,
            seed: 0xD14,
        },
        &|| DirectedOracle(DirectedBfsCounter::new(36)),
        |r| r.as_option(),
    );
}

#[test]
fn weighted_four_readers() {
    let (base, batches, graphs) = weighted_script(32, 0x3E1D);
    run_harness(
        DynamicWeightedSpc::build(base, OrderingStrategy::Degree),
        &batches,
        &graphs,
        HarnessConfig {
            num_readers: 4,
            shards: 1,
            n: 32,
            seed: 0x3E1D,
        },
        &|| WeightedOracle(DijkstraCounter::new(32)),
        |r| r.as_option(),
    );
}
