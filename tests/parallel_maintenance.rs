//! Tests for wave-scheduled parallel intra-batch maintenance: repair at
//! any thread count must be *bit-identical* to the sequential path — same
//! queries, same index, same label-operation counters — with the wave
//! schedule observable through the new `waves` / `max_wave_width` stats.

use dspc::directed::{ArcUpdate, DynamicDirectedSpc};
use dspc::dynamic::GraphUpdate;
use dspc::verify::{verify_all_pairs, verify_directed_all_pairs, verify_weighted_all_pairs};
use dspc::weighted::{DynamicWeightedSpc, WeightedUpdate};
use dspc::{DynamicSpc, MaintenanceThreads, OrderingStrategy, UpdateStats};
use dspc_graph::generators::random::{erdos_renyi_gnm, random_orientation, random_weights};
use dspc_graph::{DirectedGraph, UndirectedGraph, VertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts the deterministic-counter contract: everything except the wave
/// schedule fields (which only the parallel path fills in) must match the
/// sequential run exactly.
fn assert_same_counters(seq: &UpdateStats, par: &UpdateStats, ctx: &str) {
    assert_eq!(seq.renew_count, par.renew_count, "{ctx}: renew_count");
    assert_eq!(seq.renew_dist, par.renew_dist, "{ctx}: renew_dist");
    assert_eq!(seq.inserted, par.inserted, "{ctx}: inserted");
    assert_eq!(seq.removed, par.removed, "{ctx}: removed");
    assert_eq!(seq.hubs_processed, par.hubs_processed, "{ctx}: hubs");
    assert_eq!(seq.classify_sweeps, par.classify_sweeps, "{ctx}: classify");
    assert_eq!(
        seq.multi_far_sweeps, par.multi_far_sweeps,
        "{ctx}: multi_far_sweeps"
    );
    assert_eq!(seq.agenda_hubs, par.agenda_hubs, "{ctx}: agenda_hubs");
    assert_eq!(
        seq.vertices_visited, par.vertices_visited,
        "{ctx}: vertices_visited"
    );
    assert_eq!(seq.total_sweeps(), par.total_sweeps(), "{ctx}: sweeps");
    assert_eq!(
        seq.isolated_fast_path, par.isolated_fast_path,
        "{ctx}: fast path"
    );
}

/// Two disjoint wheels bridged through a single cut vertex `0`: center 1
/// with rim {2..=5} and center 6 with rim {7..=10}, plus bridge edges
/// (0, 1) and (0, 6). Identity ordering makes vertex 0 the top-ranked
/// endpoint of both bridge edges, so one net-deletion group severs both
/// wheels at once and the residual graph splits into three components.
fn double_wheel_bridge() -> UndirectedGraph {
    let mut edges: Vec<(u32, u32)> = vec![(0, 1), (0, 6)];
    for (center, rim) in [(1u32, [2u32, 3, 4, 5]), (6, [7, 8, 9, 10])] {
        for (i, &v) in rim.iter().enumerate() {
            edges.push((center, v));
            edges.push((v, rim[(i + 1) % rim.len()]));
        }
    }
    UndirectedGraph::from_edges(11, &edges)
}

/// Acceptance: a multi-group deletion batch on the 2×-wheel graph must
/// schedule at least two hubs into the same wave (the two wheels repair
/// concurrently), while staying query- and counter-identical to the
/// sequential path.
#[test]
fn two_wheels_repair_in_the_same_wave() {
    let g = double_wheel_bridge();
    // Severing both bridges forms one group (shared top endpoint 0); the
    // rim deletion (3, 4) forms a second group — a multi-group batch.
    let ops = [
        GraphUpdate::DeleteEdge(VertexId(0), VertexId(1)),
        GraphUpdate::DeleteEdge(VertexId(0), VertexId(6)),
        GraphUpdate::DeleteEdge(VertexId(3), VertexId(4)),
    ];

    let mut seq = DynamicSpc::build(g.clone(), OrderingStrategy::Identity);
    seq.set_maintenance_threads(MaintenanceThreads::Fixed(1));
    let seq_stats = seq.apply_batch(&ops).unwrap();
    assert_eq!(seq_stats.waves, 0, "sequential path schedules no waves");
    assert_eq!(seq_stats.max_wave_width, 0);

    for threads in [2usize, 4, 8] {
        let mut par = DynamicSpc::build(g.clone(), OrderingStrategy::Identity);
        par.set_maintenance_threads(MaintenanceThreads::Fixed(threads));
        let par_stats = par.apply_batch(&ops).unwrap();

        // The wheels live in disjoint residual components, so their hub
        // sweeps are rank-independent and share waves.
        assert!(
            par_stats.max_wave_width >= 2,
            "threads={threads}: expected a wave of ≥ 2 hubs, got width {}",
            par_stats.max_wave_width
        );
        assert!(par_stats.waves >= 2, "bridge hub 0 serializes before them");

        assert_same_counters(&seq_stats, &par_stats, &format!("threads={threads}"));
        for s in par.graph().vertices() {
            for t in par.graph().vertices() {
                assert_eq!(par.query(s, t), seq.query(s, t), "({s:?},{t:?})");
            }
        }
        verify_all_pairs(par.graph(), par.index()).unwrap();
        par.index().check_invariants().unwrap();
    }
}

/// The wave stats surface through the deprecated `delete_edges` shim too —
/// shim coverage: the old name must keep delegating to `delete_edges_with`
/// under the facade's configured options.
#[test]
fn delete_edges_reports_schedule_shape() {
    let g = double_wheel_bridge();
    let mut d = DynamicSpc::build(g, OrderingStrategy::Identity);
    d.set_maintenance_threads(MaintenanceThreads::Fixed(4));
    #[allow(deprecated)]
    let stats = d
        .delete_edges(&[(VertexId(0), VertexId(1)), (VertexId(0), VertexId(6))])
        .unwrap();
    assert!(stats.waves >= 2);
    assert!(stats.max_wave_width >= 2);
    assert_eq!(d.query(VertexId(2), VertexId(7)), None, "wheels severed");
    verify_all_pairs(d.graph(), d.index()).unwrap();
}

/// Deleting every spoke of a wheel in one epoch at several thread counts:
/// the removal-heavy, fully-conflicting case (every hub shares the rim
/// component) must serialize into width-1 waves and still match.
#[test]
fn hub_disconnect_batch_is_identical_at_any_thread_count() {
    let n = 6u32;
    let mut edges: Vec<(u32, u32)> = (1..=n).map(|v| (0, v)).collect();
    for v in 1..=n {
        edges.push((v, if v == n { 1 } else { v + 1 }));
    }
    let g = UndirectedGraph::from_edges(n as usize + 1, &edges);
    let ops: Vec<GraphUpdate> = (1..=n)
        .map(|v| GraphUpdate::DeleteEdge(VertexId(0), VertexId(v)))
        .collect();

    let mut seq = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
    let seq_stats = seq.apply_batch(&ops).unwrap();
    for threads in [2usize, 4, 8] {
        let mut par = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
        par.set_maintenance_threads(MaintenanceThreads::Fixed(threads));
        let par_stats = par.apply_batch(&ops).unwrap();
        assert_same_counters(&seq_stats, &par_stats, &format!("threads={threads}"));
        for s in par.graph().vertices() {
            for t in par.graph().vertices() {
                assert_eq!(par.query(s, t), seq.query(s, t));
            }
        }
        verify_all_pairs(par.graph(), par.index()).unwrap();
    }
}

/// Decodes selector pairs into a valid mixed batch against `g`: distinct
/// existing edges to delete, distinct absent edges to insert.
fn mixed_ops(g: &UndirectedGraph, sel: &[(usize, usize)]) -> Vec<GraphUpdate> {
    let edges: Vec<_> = g.edges().collect();
    let vs: Vec<VertexId> = g.vertices().collect();
    let mut non_edges = Vec::new();
    for (i, &u) in vs.iter().enumerate() {
        for &v in &vs[i + 1..] {
            if !g.has_edge(u, v) {
                non_edges.push((u, v));
            }
        }
    }
    let (mut used_del, mut used_ins) = (Vec::new(), Vec::new());
    let mut ops = Vec::new();
    for &(d, i) in sel {
        if !edges.is_empty() {
            let k = d % edges.len();
            if !used_del.contains(&k) {
                used_del.push(k);
                ops.push(GraphUpdate::DeleteEdge(edges[k].0, edges[k].1));
            }
        }
        if !non_edges.is_empty() {
            let k = i % non_edges.len();
            if !used_ins.contains(&k) {
                used_ins.push(k);
                ops.push(GraphUpdate::InsertEdge(non_edges[k].0, non_edges[k].1));
            }
        }
    }
    ops
}

fn graph_strategy(max_n: usize) -> impl Strategy<Value = UndirectedGraph> {
    (4usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=3 * n)
            .prop_map(move |edges| UndirectedGraph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// For arbitrary graphs and mixed batches, parallel repair at 2, 4,
    /// and 8 threads is query-identical to `threads = 1` and to the
    /// BFS-counting oracle, and the merged counters equal the sequential
    /// counters.
    #[test]
    fn parallel_mixed_batches_match_sequential_and_oracle(
        g in graph_strategy(18),
        sel in proptest::collection::vec((0usize..1 << 16, 0usize..1 << 16), 1..7),
    ) {
        let ops = mixed_ops(&g, &sel);
        let mut seq = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
        seq.set_maintenance_threads(MaintenanceThreads::Fixed(1));
        let seq_stats = seq.apply_batch(&ops).unwrap();
        for threads in [2usize, 4, 8] {
            let mut par = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
            par.set_maintenance_threads(MaintenanceThreads::Fixed(threads));
            let par_stats = par.apply_batch(&ops).unwrap();
            assert_same_counters(&seq_stats, &par_stats, &format!("threads={threads}"));
            for s in par.graph().vertices() {
                for t in par.graph().vertices() {
                    prop_assert_eq!(par.query(s, t), seq.query(s, t));
                }
            }
            verify_all_pairs(par.graph(), par.index()).unwrap();
            par.index().check_invariants().unwrap();
        }
    }
}

#[test]
fn directed_parallel_batches_match_sequential_and_oracle() {
    let mut rng = StdRng::seed_from_u64(13_571);
    for trial in 0..10 {
        let base = erdos_renyi_gnm(12 + trial, 36, &mut rng);
        let g: DirectedGraph = random_orientation(&base, 0.3, &mut rng);
        let arcs: Vec<_> = g.arcs().collect();
        if arcs.len() < 4 {
            continue;
        }
        let mut doomed: Vec<(VertexId, VertexId)> = Vec::new();
        for _ in 0..(3 + trial % 4) {
            let (a, b) = arcs[rng.gen_range(0..arcs.len())];
            if !doomed.contains(&(a, b)) {
                doomed.push((a, b));
            }
        }
        let ops: Vec<ArcUpdate> = doomed
            .iter()
            .map(|&(a, b)| ArcUpdate::DeleteArc(a, b))
            .collect();

        let mut seq = DynamicDirectedSpc::build(g.clone(), OrderingStrategy::Degree);
        seq.set_maintenance_threads(MaintenanceThreads::Fixed(1));
        let seq_stats = seq.apply_batch(&ops).unwrap();
        for threads in [2usize, 4, 8] {
            let mut par = DynamicDirectedSpc::build(g.clone(), OrderingStrategy::Degree);
            par.set_maintenance_threads(MaintenanceThreads::Fixed(threads));
            let par_stats = par.apply_batch(&ops).unwrap();
            assert_same_counters(
                &seq_stats,
                &par_stats,
                &format!("trial={trial} threads={threads}"),
            );
            for s in par.graph().vertices() {
                for t in par.graph().vertices() {
                    assert_eq!(par.query(s, t), seq.query(s, t), "({s:?}→{t:?})");
                }
            }
            verify_directed_all_pairs(par.graph(), par.index()).unwrap();
            par.index().check_invariants().unwrap();
        }
    }
}

#[test]
fn weighted_parallel_batches_match_sequential_and_oracle() {
    let mut rng = StdRng::seed_from_u64(24_680);
    for trial in 0..10 {
        let base = erdos_renyi_gnm(11 + trial, 30, &mut rng);
        let g = random_weights(&base, 5, &mut rng);
        let edges: Vec<_> = g.edges().collect();
        if edges.len() < 4 {
            continue;
        }
        let mut doomed: Vec<(VertexId, VertexId)> = Vec::new();
        for _ in 0..(3 + trial % 3) {
            let (a, b, _) = edges[rng.gen_range(0..edges.len())];
            if !doomed.contains(&(a, b)) {
                doomed.push((a, b));
            }
        }
        let ops: Vec<WeightedUpdate> = doomed
            .iter()
            .map(|&(a, b)| WeightedUpdate::DeleteEdge(a, b))
            .collect();

        let mut seq = DynamicWeightedSpc::build(g.clone(), OrderingStrategy::Degree);
        seq.set_maintenance_threads(MaintenanceThreads::Fixed(1));
        let seq_stats = seq.apply_batch(&ops).unwrap();
        for threads in [2usize, 4, 8] {
            let mut par = DynamicWeightedSpc::build(g.clone(), OrderingStrategy::Degree);
            par.set_maintenance_threads(MaintenanceThreads::Fixed(threads));
            let par_stats = par.apply_batch(&ops).unwrap();
            assert_same_counters(
                &seq_stats,
                &par_stats,
                &format!("trial={trial} threads={threads}"),
            );
            for s in par.graph().vertices() {
                for t in par.graph().vertices() {
                    assert_eq!(par.query(s, t), seq.query(s, t), "({s:?},{t:?})");
                }
            }
            verify_weighted_all_pairs(par.graph(), par.index()).unwrap();
            par.index().check_invariants().unwrap();
        }
    }
}

/// The knob round-trips and `Auto` stays usable as the default.
#[test]
fn maintenance_threads_knob_roundtrip() {
    let mut d = DynamicSpc::build(double_wheel_bridge(), OrderingStrategy::Degree);
    assert_eq!(d.maintenance_threads(), MaintenanceThreads::Auto);
    d.set_maintenance_threads(MaintenanceThreads::Fixed(3));
    assert_eq!(d.maintenance_threads(), MaintenanceThreads::Fixed(3));
    // A batch under the configured budget still repairs exactly.
    d.apply_batch(&[
        GraphUpdate::DeleteEdge(VertexId(1), VertexId(2)),
        GraphUpdate::DeleteEdge(VertexId(6), VertexId(7)),
    ])
    .unwrap();
    verify_all_pairs(d.graph(), d.index()).unwrap();
}
