//! End-to-end reproduction of every worked example in the paper, at the
//! integration level: Table 2's index, Figure 3's incremental walkthrough,
//! Figure 6's decremental walkthrough, and Example 2.1/2.2's queries —
//! exercised through the public `DynamicSpc` facade only.

use dspc::{DynamicSpc, OrderingStrategy};
use dspc_graph::generators::paper::figure2_g;
use dspc_graph::VertexId;

fn v(x: u32) -> VertexId {
    VertexId(x)
}

/// Table 2 of the paper: the complete SPC-Index of Figure 2's graph under
/// `v0 ≤ v1 ≤ … ≤ v11`.
type Table2Row = (u32, &'static [(u32, u32, u64)]);
const TABLE2: &[Table2Row] = &[
    (0, &[(0, 0, 1)]),
    (1, &[(0, 1, 1), (1, 0, 1)]),
    (2, &[(0, 1, 1), (1, 1, 1), (2, 0, 1)]),
    (3, &[(0, 1, 1), (1, 2, 1), (2, 1, 1), (3, 0, 1)]),
    (4, &[(0, 3, 3), (1, 2, 1), (2, 2, 1), (3, 2, 1), (4, 0, 1)]),
    (5, &[(0, 2, 2), (1, 1, 1), (2, 1, 1), (4, 1, 1), (5, 0, 1)]),
    (6, &[(0, 2, 1), (1, 1, 1), (4, 3, 1), (6, 0, 1)]),
    (
        7,
        &[
            (0, 2, 1),
            (1, 3, 2),
            (2, 2, 1),
            (3, 1, 1),
            (4, 1, 1),
            (7, 0, 1),
        ],
    ),
    (8, &[(0, 1, 1), (2, 2, 1), (3, 1, 1), (8, 0, 1)]),
    (
        9,
        &[
            (0, 4, 4),
            (1, 3, 2),
            (2, 3, 1),
            (3, 3, 1),
            (4, 1, 1),
            (6, 2, 1),
            (9, 0, 1),
        ],
    ),
    (
        10,
        &[
            (0, 3, 1),
            (1, 2, 1),
            (3, 4, 1),
            (4, 2, 1),
            (6, 1, 1),
            (9, 1, 1),
            (10, 0, 1),
        ],
    ),
    (11, &[(0, 1, 1), (11, 0, 1)]),
];

#[test]
fn table2_is_reproduced_exactly() {
    let dspc = DynamicSpc::build(figure2_g(), OrderingStrategy::Identity);
    let index = dspc.index();
    for &(vertex, expected) in TABLE2 {
        let got: Vec<(u32, u32, u64)> = index
            .label_set(v(vertex))
            .entries()
            .iter()
            .map(|e| (e.hub.0, e.dist, e.count))
            .collect();
        assert_eq!(got, expected.to_vec(), "L(v{vertex})");
    }
    // Identity ordering ⇒ hub rank == hub vertex id, so Table 2 reads off
    // directly. Total size: 50 entries.
    assert_eq!(index.num_entries(), 50);
}

#[test]
fn example_2_1_and_2_2() {
    let dspc = DynamicSpc::build(figure2_g(), OrderingStrategy::Identity);
    // Example 2.1: SPC(v4, v6) = 2 at distance 3 via hubs {v1, v4}.
    assert_eq!(dspc.query(v(4), v(6)), Some((3, 2)));
    // Example 2.2: (v0,2,2) ∈ L(v5) is canonical (spc(v0,v5) = 2);
    // (v2,2,1) ∈ L(v8) is non-canonical (spc(v2,v8) = 2 > 1).
    assert_eq!(dspc.query(v(0), v(5)), Some((2, 2)));
    assert_eq!(dspc.query(v(2), v(8)), Some((2, 2)));
    let e = dspc.index().label_of(v(8), v(2)).unwrap();
    assert_eq!((e.dist, e.count), (2, 1));
}

#[test]
fn figure3_incremental_walkthrough() {
    let mut dspc = DynamicSpc::build(figure2_g(), OrderingStrategy::Identity);
    let stats = dspc.insert_edge(v(3), v(9)).unwrap();

    // Figure 3(d)'s ledger, row by row (hub v0 block):
    let idx = dspc.index();
    let entry = |vv: u32, h: u32| {
        let e = idx.label_of(v(vv), v(h)).unwrap();
        (e.dist, e.count)
    };
    assert_eq!(entry(9, 0), (2, 1)); // renew d and c: (v0,2,1)
    assert_eq!(entry(4, 0), (3, 4)); // renew c: count 3 → 4
    assert_eq!(entry(10, 0), (3, 2)); // renew c: count 1 → 2
    assert_eq!(entry(9, 1), (3, 3)); // hub v1: renew c 2 → 3
    assert_eq!(entry(9, 2), (2, 1)); // hub v2: renew d and c
    assert_eq!(entry(10, 2), (3, 1)); // hub v2: fresh insert
    assert_eq!(entry(9, 3), (1, 1)); // the new edge itself under hub v3

    // The walkthrough's operation mix is visible in the stats.
    assert!(stats.renew_count >= 3);
    assert!(stats.renew_dist >= 2);
    assert!(stats.inserted >= 1);
    assert_eq!(stats.removed, 0);

    dspc::verify::verify_all_pairs(dspc.graph(), dspc.index()).unwrap();
}

#[test]
fn example_3_13_and_figure6_decremental_walkthrough() {
    let mut dspc = DynamicSpc::build(figure2_g(), OrderingStrategy::Identity);
    let (stats, srr) = dspc.delete_edge_with_sets(v(1), v(2)).unwrap();

    // Example 3.13: SR_v1 = {v1, v6, v10}, SR_v2 = {v2}, R_v2 = {v3, v7},
    // R_v1 = ∅.
    let sorted = |xs: &[VertexId]| {
        let mut s: Vec<u32> = xs.iter().map(|x| x.0).collect();
        s.sort_unstable();
        s
    };
    assert_eq!(sorted(&srr.sr_a), vec![1, 6, 10]);
    assert_eq!(sorted(&srr.sr_b), vec![2]);
    assert_eq!(sorted(&srr.r_a), Vec::<u32>::new());
    assert_eq!(sorted(&srr.r_b), vec![3, 7]);

    // Figure 6(d)'s ledger:
    let idx = dspc.index();
    let e = idx.label_of(v(2), v(1)).unwrap();
    assert_eq!((e.dist, e.count), (2, 1)); // (v1,1,1) → (v1,2,1)
    assert!(idx.label_of(v(3), v(1)).is_none()); // (v1,2,1) removed
    let e = idx.label_of(v(7), v(1)).unwrap();
    assert_eq!((e.dist, e.count), (3, 1)); // (v1,3,2) → (v1,3,1)
    let e = idx.label_of(v(10), v(2)).unwrap();
    assert_eq!((e.dist, e.count), (4, 1)); // fresh (v2,4,1)

    assert!(stats.removed >= 1);
    dspc::verify::verify_all_pairs(dspc.graph(), dspc.index()).unwrap();
}

#[test]
fn figure1_motivation_via_facade() {
    // Figure 1: recommend c (two shortest paths) over b (one).
    let g = dspc_graph::generators::paper::figure1_h();
    let dspc = DynamicSpc::build(g, OrderingStrategy::Degree);
    let (d_b, c_b) = dspc.query(v(0), v(3)).unwrap();
    let (d_c, c_c) = dspc.query(v(0), v(4)).unwrap();
    assert_eq!(d_b, d_c, "equidistant candidates");
    assert!(c_c > c_b, "c has strictly more shortest paths");
}

#[test]
fn figure4_toy_decremental_rerouting() {
    // Figure 4: after deleting (a, b), (h,3,1) ∈ L(u) becomes (h,6,1) and
    // (w,5,1) appears though w labeled neither endpoint (condition B).
    let g = dspc_graph::generators::paper::figure4_toy();
    let mut dspc = DynamicSpc::build(g, OrderingStrategy::Identity);
    dspc.delete_edge(v(2), v(3)).unwrap();
    let e = dspc.index().label_of(v(4), v(0)).unwrap();
    assert_eq!((e.dist, e.count), (6, 1));
    let e = dspc.index().label_of(v(4), v(1)).unwrap();
    assert_eq!((e.dist, e.count), (5, 1));
    dspc::verify::verify_all_pairs(dspc.graph(), dspc.index()).unwrap();
}
