//! Integration tests for the multi-edge `SrrSEARCH` repair path: batched
//! pure-deletion epochs must match sequential deletion query-for-query
//! (and the brute-force oracles), while performing strictly fewer engine
//! sweeps whenever the deleted edges share affected hubs.

use dspc::directed::DynamicDirectedSpc;
use dspc::dynamic::{GraphUpdate, UpdateKind};
use dspc::verify::{verify_all_pairs, verify_directed_all_pairs, verify_weighted_all_pairs};
use dspc::weighted::DynamicWeightedSpc;
use dspc::{DynamicSpc, OrderingStrategy};
use dspc_graph::generators::random::{erdos_renyi_gnm, random_orientation, random_weights};
use dspc_graph::{DirectedGraph, UndirectedGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wheel graph: center `0` joined to every rim vertex `1..=n`, rim closed
/// into a cycle. Deleting spokes never isolates a rim vertex, and every
/// spoke deletion affects the center hub — the ideal overlap case.
fn wheel(n: u32) -> UndirectedGraph {
    let mut edges: Vec<(u32, u32)> = (1..=n).map(|v| (0, v)).collect();
    for v in 1..=n {
        edges.push((v, if v == n { 1 } else { v + 1 }));
    }
    UndirectedGraph::from_edges(n as usize + 1, &edges)
}

#[test]
fn pure_deletion_batch_uses_strictly_fewer_sweeps_than_sequential() {
    // Three spokes of the wheel share the center as their higher-ranked
    // endpoint: one hub group, heavily overlapping SR sets.
    let g = wheel(8);
    let spokes = [
        (VertexId(0), VertexId(2)),
        (VertexId(0), VertexId(4)),
        (VertexId(0), VertexId(6)),
    ];
    let ops: Vec<GraphUpdate> = spokes
        .iter()
        .map(|&(a, b)| GraphUpdate::DeleteEdge(a, b))
        .collect();

    let mut batched = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
    let batch_stats = batched.apply_batch(&ops).unwrap();
    assert_eq!(batch_stats.kind, UpdateKind::Batch);

    let mut streamed = DynamicSpc::build(g, OrderingStrategy::Degree);
    let mut seq_sweeps = 0usize;
    for &(a, b) in &spokes {
        seq_sweeps += streamed.delete_edge(a, b).unwrap().total_sweeps();
    }

    // The amortization claim: one repair sweep per distinct affected hub
    // for the whole group, versus one per edge per hub sequentially.
    assert!(
        batch_stats.total_sweeps() < seq_sweeps,
        "batch {} sweeps, sequential {seq_sweeps}",
        batch_stats.total_sweeps()
    );
    // Classification runs one multi-far sweep per distinct affected
    // endpoint — the three spokes share the center, so 4 endpoints beat
    // the 2-per-edge cost (6) of per-edge classification.
    assert_eq!(batch_stats.classify_sweeps, 4);
    assert!(batch_stats.classify_sweeps < 2 * spokes.len());
    // The center classifies against all three doomed spokes in one sweep.
    assert!(batch_stats.multi_far_sweeps >= 1);
    assert!(batch_stats.hubs_processed < seq_sweeps - batch_stats.classify_sweeps);

    // And the amortized path still lands on the exact same index behavior.
    for s in batched.graph().vertices() {
        for t in batched.graph().vertices() {
            assert_eq!(batched.query(s, t), streamed.query(s, t), "({s:?},{t:?})");
        }
    }
    verify_all_pairs(batched.graph(), batched.index()).unwrap();
    batched.index().check_invariants().unwrap();

    // Wave-parallel repair is a scheduling change, not an algorithmic one:
    // every sweep-count assertion above holds verbatim at any thread count.
    for threads in [2usize, 4, 8] {
        let mut par = DynamicSpc::build(wheel(8), OrderingStrategy::Degree);
        par.set_maintenance_threads(dspc::MaintenanceThreads::Fixed(threads));
        let par_stats = par.apply_batch(&ops).unwrap();
        assert_eq!(
            par_stats.total_sweeps(),
            batch_stats.total_sweeps(),
            "threads={threads}"
        );
        assert_eq!(par_stats.classify_sweeps, batch_stats.classify_sweeps);
        assert_eq!(par_stats.hubs_processed, batch_stats.hubs_processed);
        assert_eq!(par_stats.total_ops(), batch_stats.total_ops());
        verify_all_pairs(par.graph(), par.index()).unwrap();
    }
}

#[test]
fn batch_deletions_disconnecting_a_hub_entirely() {
    // Delete every spoke of a small wheel in one epoch: the center (the
    // top-ranked hub under degree order) ends up isolated and all its
    // outgoing labels must disappear from the rim.
    let n = 5u32;
    let g = wheel(n);
    let ops: Vec<GraphUpdate> = (1..=n)
        .map(|v| GraphUpdate::DeleteEdge(VertexId(0), VertexId(v)))
        .collect();
    let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
    let stats = d.apply_batch(&ops).unwrap();
    assert!(stats.removed > 0);
    assert_eq!(d.query(VertexId(0), VertexId(0)), Some((0, 1)));
    for v in 1..=n {
        assert_eq!(d.query(VertexId(0), VertexId(v)), None);
    }
    // The rim cycle survives intact.
    assert_eq!(d.query(VertexId(1), VertexId(3)), Some((2, 1)));
    verify_all_pairs(d.graph(), d.index()).unwrap();
    d.index().check_invariants().unwrap();
}

#[test]
fn overlapping_deletions_sharing_endpoints_with_one_hub() {
    // Triangle (h, a, b) with h the top-ranked hub plus an a–c–b detour:
    // deleting (h,a) and (h,b) in one batch leaves h attached through d
    // only. Both deletions share hub h and the triangle edge (a,b) sits
    // in both affected regions.
    //   h=0, a=1, b=2, c=3, d=4; edges: (0,1) (0,2) (1,2) (1,3) (2,3) (0,4).
    let g = UndirectedGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (0, 4)]);
    let ops = [
        GraphUpdate::DeleteEdge(VertexId(0), VertexId(1)),
        GraphUpdate::DeleteEdge(VertexId(0), VertexId(2)),
    ];
    let mut batched = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
    batched.apply_batch(&ops).unwrap();
    let mut streamed = DynamicSpc::build(g, OrderingStrategy::Degree);
    streamed.apply_stream(&ops).unwrap();
    for s in batched.graph().vertices() {
        for t in batched.graph().vertices() {
            assert_eq!(batched.query(s, t), streamed.query(s, t), "({s:?},{t:?})");
        }
    }
    // h and its pendant are cut off from the triangle remnant.
    assert_eq!(batched.query(VertexId(0), VertexId(3)), None);
    assert_eq!(batched.query(VertexId(4), VertexId(1)), None);
    assert_eq!(batched.query(VertexId(0), VertexId(4)), Some((1, 1)));
    verify_all_pairs(batched.graph(), batched.index()).unwrap();
    batched.index().check_invariants().unwrap();
}

#[test]
fn delete_then_reinsert_bridge_folds_to_noop() {
    // The bridge of two triangles: deleting and re-inserting it inside one
    // epoch must coalesce away — no maintenance, no sweeps, same queries.
    let g = dspc_graph::generators::classic::two_cliques_bridge(3);
    let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
    let bridge = {
        // two_cliques_bridge joins vertex 2 of the left clique to vertex 3
        // of the right one; recover it structurally to stay robust.
        let (a, b) = d
            .graph()
            .edges()
            .find(|&(a, b)| (a.0 < 3) != (b.0 < 3))
            .unwrap();
        (a, b)
    };
    let before: Vec<_> = d
        .graph()
        .vertices()
        .flat_map(|s| d.graph().vertices().map(move |t| (s, t)))
        .map(|(s, t)| d.query(s, t))
        .collect();
    let stats = d
        .apply_batch(&[
            GraphUpdate::DeleteEdge(bridge.0, bridge.1),
            GraphUpdate::InsertEdge(bridge.0, bridge.1),
        ])
        .unwrap();
    assert_eq!(stats.total_ops(), 0, "coalesced to nothing");
    assert_eq!(stats.total_sweeps(), 0, "no engine work at all");
    let after: Vec<_> = d
        .graph()
        .vertices()
        .flat_map(|s| d.graph().vertices().map(move |t| (s, t)))
        .map(|(s, t)| d.query(s, t))
        .collect();
    assert_eq!(before, after);
    assert!(d.graph().has_edge(bridge.0, bridge.1));
    verify_all_pairs(d.graph(), d.index()).unwrap();
}

#[test]
fn pendant_heavy_batch_peels_fast_path_deletions() {
    // A star: every spoke deletion strands a pendant leaf, so sequential
    // deletes cost zero sweeps via the §3.2.3 fast path. The batch path
    // must not be slower — eligible edges are peeled off the group to the
    // same fast path before any classification sweep runs.
    let g = dspc_graph::generators::classic::star_graph(7);
    let ops: Vec<GraphUpdate> = (1..4)
        .map(|v| GraphUpdate::DeleteEdge(VertexId(0), VertexId(v)))
        .collect();
    let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
    let stats = d.apply_batch(&ops).unwrap();
    assert_eq!(stats.total_sweeps(), 0, "all spokes peel to the fast path");
    assert!(stats.removed >= 3);
    for v in 1..4 {
        assert_eq!(d.query(VertexId(0), VertexId(v)), None);
    }
    assert_eq!(d.query(VertexId(0), VertexId(5)), Some((1, 1)));
    verify_all_pairs(d.graph(), d.index()).unwrap();
    d.index().check_invariants().unwrap();
}

#[test]
fn random_pure_deletion_batches_match_sequential_and_oracle() {
    let mut rng = StdRng::seed_from_u64(97_531);
    for trial in 0..12 {
        let n = 18 + trial;
        let g = erdos_renyi_gnm(n, 3 * n, &mut rng);
        let mut batched = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
        let mut streamed = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);

        // Pick a hub-sharing batch: up to half the edges incident to the
        // top-ranked vertex, padded with random edges.
        let top = batched.index().vertex(dspc::Rank(0));
        let mut doomed: Vec<(VertexId, VertexId)> = g
            .neighbors(top)
            .iter()
            .take(4)
            .map(|&u| (top, VertexId(u)))
            .collect();
        for _ in 0..3 {
            let m = g.num_edges();
            let (a, b) = g.nth_edge(rng.gen_range(0..m)).unwrap();
            if !doomed.contains(&(a, b)) && !doomed.contains(&(b, a)) {
                doomed.push((a, b));
            }
        }
        let ops: Vec<GraphUpdate> = doomed
            .iter()
            .map(|&(a, b)| GraphUpdate::DeleteEdge(a, b))
            .collect();

        batched.apply_batch(&ops).unwrap();
        streamed.apply_stream(&ops).unwrap();
        for s in batched.graph().vertices() {
            for t in batched.graph().vertices() {
                assert_eq!(
                    batched.query(s, t),
                    streamed.query(s, t),
                    "trial {trial}, pair ({s:?},{t:?})"
                );
            }
        }
        verify_all_pairs(batched.graph(), batched.index()).unwrap();
        batched.index().check_invariants().unwrap();
    }
}

#[test]
fn random_directed_pure_deletion_batches_match_oracle() {
    use dspc::directed::ArcUpdate;
    let mut rng = StdRng::seed_from_u64(86_420);
    for trial in 0..8 {
        let base = erdos_renyi_gnm(14 + trial, 40, &mut rng);
        let g: DirectedGraph = random_orientation(&base, 0.3, &mut rng);
        let mut d = DynamicDirectedSpc::build(g.clone(), OrderingStrategy::Degree);
        let arcs: Vec<_> = g.arcs().collect();
        if arcs.len() < 4 {
            continue;
        }
        let k = 3 + (trial % 4);
        let mut doomed: Vec<(VertexId, VertexId)> = Vec::new();
        for _ in 0..k {
            let (a, b) = arcs[rng.gen_range(0..arcs.len())];
            if !doomed.contains(&(a, b)) {
                doomed.push((a, b));
            }
        }
        let ops: Vec<ArcUpdate> = doomed
            .iter()
            .map(|&(a, b)| ArcUpdate::DeleteArc(a, b))
            .collect();
        d.apply_batch(&ops).unwrap();
        verify_directed_all_pairs(d.graph(), d.index()).unwrap();
        d.index().check_invariants().unwrap();
    }
}

#[test]
fn random_weighted_pure_deletion_batches_match_oracle() {
    use dspc::weighted::WeightedUpdate;
    let mut rng = StdRng::seed_from_u64(75_309);
    for trial in 0..8 {
        let base = erdos_renyi_gnm(12 + trial, 34, &mut rng);
        let g = random_weights(&base, 5, &mut rng);
        let mut d = DynamicWeightedSpc::build(g.clone(), OrderingStrategy::Degree);
        let edges: Vec<_> = g.edges().collect();
        if edges.len() < 4 {
            continue;
        }
        let k = 3 + (trial % 3);
        let mut doomed: Vec<(VertexId, VertexId)> = Vec::new();
        for _ in 0..k {
            let (a, b, _) = edges[rng.gen_range(0..edges.len())];
            if !doomed.contains(&(a, b)) {
                doomed.push((a, b));
            }
        }
        let ops: Vec<WeightedUpdate> = doomed
            .iter()
            .map(|&(a, b)| WeightedUpdate::DeleteEdge(a, b))
            .collect();
        d.apply_batch(&ops).unwrap();
        verify_weighted_all_pairs(d.graph(), d.index()).unwrap();
        d.index().check_invariants().unwrap();
    }
}

#[test]
fn facade_delete_edges_validates_before_mutating() {
    let g = wheel(5);
    let mut d = DynamicSpc::build(g, OrderingStrategy::Degree);
    let opts = d.maintenance_options();
    let edges_before = d.graph().num_edges();
    // Second edge missing: nothing at all may be applied.
    let err = d.delete_edges_with(
        &[(VertexId(0), VertexId(1)), (VertexId(2), VertexId(5))],
        &opts,
    );
    assert!(err.is_err());
    assert_eq!(d.graph().num_edges(), edges_before);
    // Duplicate edge in one set: rejected up front, naming the actual
    // duplicated edge — not an arbitrary member of the set.
    let err = d.delete_edges_with(
        &[
            (VertexId(1), VertexId(2)),
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(0)),
        ],
        &opts,
    );
    match err {
        Err(dspc_graph::GraphError::MissingEdge(a, b)) => {
            assert_eq!((a, b), (VertexId(0), VertexId(1)));
        }
        other => panic!("expected MissingEdge(0, 1), got {other:?}"),
    }
    assert_eq!(d.graph().num_edges(), edges_before);
    verify_all_pairs(d.graph(), d.index()).unwrap();
}
