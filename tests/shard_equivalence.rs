//! Property-based equivalence of the shared-nothing sharded snapshot: for
//! arbitrary random graphs and shard layouts — even shard counts that
//! exceed the vertex count, and adversarially uneven explicit bounds with
//! empty shards — [`dspc::ShardedFlatIndex`] must answer **bit-identically**
//! to the unsharded [`dspc::FlatIndex`] and to the live label sets,
//! including the rank-limited `PreQUERY` kernel. The per-shard counted path
//! must also conserve work: summed across shards, `merge_steps` equals the
//! unsharded kernel's count exactly (the serving layer's per-shard
//! attribution is a partition, not an approximation).

use dspc::shard::{even_bounds, ShardedFlatIndex};
use dspc::{pre_query, spc_query, FlatIndex, FlatScratch, KernelCounters, OrderingStrategy};
use proptest::prelude::*;

mod common;
use common::graph_strategy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharded queries ≡ flat queries ≡ live kernel, across 1/2/4/7-way
    /// even splits (7 deliberately never divides the sizes the strategy
    /// produces evenly, and often exceeds the vertex count).
    #[test]
    fn sharded_matches_flat_and_live(g in graph_strategy(18), seed in 0u64..1000) {
        let index = dspc::build_index(&g, OrderingStrategy::Random(seed));
        let flat = FlatIndex::freeze(&index);
        for shards in [1usize, 2, 4, 7] {
            let sharded = ShardedFlatIndex::from_flat(&flat, shards);
            prop_assert_eq!(sharded.num_shards(), shards);
            prop_assert_eq!(sharded.num_vertices(), flat.num_vertices());
            prop_assert_eq!(sharded.num_entries(), flat.num_entries());
            for s in g.vertices() {
                for t in g.vertices() {
                    let live = spc_query(&index, s, t);
                    prop_assert_eq!(sharded.query(s, t), live);
                    prop_assert_eq!(sharded.query(s, t), flat.query(s, t));
                    prop_assert_eq!(sharded.pre_query(s, t), pre_query(&index, s, t));
                    prop_assert_eq!(sharded.pre_query(s, t), flat.pre_query(s, t));
                }
            }
        }
    }

    /// Explicit uneven bounds (arbitrary cut points, duplicates allowed →
    /// empty shards) answer identically to the unsharded snapshot, and
    /// `shard_of` routes every vertex into the range that owns it.
    #[test]
    fn uneven_bounds_are_exact(
        g in graph_strategy(16),
        cuts in proptest::collection::vec(0u32..16, 0..5),
    ) {
        let index = dspc::build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&index);
        let n = flat.num_vertices() as u32;
        let mut bounds: Vec<u32> = cuts.into_iter().map(|c| c % (n + 1)).collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        let sharded = ShardedFlatIndex::with_bounds(&flat, &bounds).expect("bounds are valid");
        prop_assert_eq!(sharded.num_shards(), bounds.len() - 1);
        for s in g.vertices() {
            let owner = sharded.shard_of(s);
            prop_assert!(sharded.bounds()[owner] <= s.0 && s.0 < sharded.bounds()[owner + 1]);
            for t in g.vertices() {
                prop_assert_eq!(sharded.query(s, t), flat.query(s, t));
                prop_assert_eq!(sharded.pre_query(s, t), flat.pre_query(s, t));
            }
        }
    }

    /// Per-shard counted queries conserve kernel work: the per-shard
    /// `merge_steps`/`common_hubs` totals equal the unsharded kernel's
    /// counters bit-for-bit, and every query is attributed to exactly the
    /// shard owning its source vertex.
    #[test]
    fn per_shard_counters_partition_the_kernel_work(
        g in graph_strategy(14),
        shards in 1usize..6,
    ) {
        let index = dspc::build_index(&g, OrderingStrategy::Degree);
        let flat = FlatIndex::freeze(&index);
        let sharded = ShardedFlatIndex::from_flat(&flat, shards);
        let mut scratch = FlatScratch::new();
        let mut flat_c = KernelCounters::new();
        let mut per_shard = vec![KernelCounters::new(); shards];
        for s in g.vertices() {
            for t in g.vertices() {
                let want = flat.query_counted(&mut scratch, &mut flat_c, s, t);
                let got = sharded.query_counted(&mut scratch, &mut per_shard, s, t);
                prop_assert_eq!(got, want);
            }
        }
        let mut summed = KernelCounters::new();
        for c in &per_shard {
            summed.queries += c.queries;
            summed.merge_steps += c.merge_steps;
            summed.common_hubs += c.common_hubs;
        }
        prop_assert_eq!(summed, flat_c);
        // Attribution: shard i answered exactly the queries whose source
        // lives in its vertex range.
        let vs: Vec<_> = g.vertices().collect();
        for (i, c) in per_shard.iter().enumerate() {
            let owned = vs.iter().filter(|v| sharded.shard_of(**v) == i).count();
            prop_assert_eq!(c.queries, (owned * vs.len()) as u64);
        }
    }
}

/// `even_bounds` invariants at the edges the proptest sizes don't hit.
#[test]
fn even_bounds_shapes() {
    assert_eq!(even_bounds(10, 4), vec![0, 3, 6, 8, 10]);
    assert_eq!(even_bounds(3, 7), vec![0, 1, 2, 3, 3, 3, 3, 3]);
    assert_eq!(even_bounds(0, 3), vec![0, 0, 0, 0]);
    assert_eq!(even_bounds(5, 0), vec![0, 5], "zero shards clamps to one");
}

/// Malformed bounds are rejected, not mis-sliced.
#[test]
fn bad_bounds_are_rejected() {
    let g = dspc_graph::UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    let flat = FlatIndex::freeze(&dspc::build_index(&g, OrderingStrategy::Degree));
    assert!(ShardedFlatIndex::with_bounds(&flat, &[0]).is_err());
    assert!(ShardedFlatIndex::with_bounds(&flat, &[1, 4]).is_err());
    assert!(ShardedFlatIndex::with_bounds(&flat, &[0, 3, 2, 4]).is_err());
    assert!(ShardedFlatIndex::with_bounds(&flat, &[0, 2, 3]).is_err());
}
