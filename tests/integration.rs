//! Cross-crate integration tests: dataset registry → construction →
//! dynamic maintenance → applications → serialization, end to end.

use dspc::policy::{MaintenancePolicy, ManagedSpc};
use dspc::verify::{verify_all_pairs, verify_sampled_pairs};
use dspc::{DynamicSpc, OrderingStrategy};
use dspc_graph::generators::random::{barabasi_albert, erdos_renyi_gnm, watts_strogatz};
use dspc_graph::{UndirectedGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drives a long mixed update stream on a scale-free graph and verifies the
/// maintained index, an independently rebuilt index, and BFS all agree.
#[test]
fn long_hybrid_stream_three_way_agreement() {
    let mut rng = StdRng::seed_from_u64(0x1001);
    let g = barabasi_albert(150, 2, &mut rng);
    let mut dspc = DynamicSpc::build(g, OrderingStrategy::Degree);
    for step in 0..120 {
        let roll: f64 = rng.gen();
        if roll < 0.55 || dspc.graph().num_edges() < 10 {
            loop {
                let a = VertexId(rng.gen_range(0..dspc.graph().capacity() as u32));
                let b = VertexId(rng.gen_range(0..dspc.graph().capacity() as u32));
                if a != b
                    && dspc.graph().contains_vertex(a)
                    && dspc.graph().contains_vertex(b)
                    && !dspc.graph().has_edge(a, b)
                {
                    dspc.insert_edge(a, b).unwrap();
                    break;
                }
            }
        } else if roll < 0.85 {
            let m = dspc.graph().num_edges();
            let (a, b) = dspc.graph().nth_edge(rng.gen_range(0..m)).unwrap();
            dspc.delete_edge(a, b).unwrap();
        } else if roll < 0.93 {
            let neighbors: Vec<VertexId> = dspc
                .graph()
                .vertices()
                .filter(|_| rng.gen_bool(0.02))
                .take(3)
                .collect();
            dspc.add_vertex_connected(&neighbors).unwrap();
        } else {
            let candidates: Vec<VertexId> = dspc.graph().vertices().collect();
            let v = candidates[rng.gen_range(0..candidates.len())];
            dspc.delete_vertex(v).unwrap();
        }
        if step % 30 == 29 {
            verify_all_pairs(dspc.graph(), dspc.index()).unwrap();
            dspc.index().check_invariants().unwrap();
        }
    }
    verify_all_pairs(dspc.graph(), dspc.index()).unwrap();

    // Independent rebuild answers identically on every pair.
    let rebuilt = dspc::rebuild_index(dspc.graph(), dspc.index().ranks().clone());
    for s in dspc.graph().vertices() {
        for t in dspc.graph().vertices() {
            assert_eq!(
                dspc::spc_query(dspc.index(), s, t),
                dspc::spc_query(&rebuilt, s, t)
            );
        }
    }
}

#[test]
fn serialization_round_trip_mid_stream() {
    let mut rng = StdRng::seed_from_u64(0x1002);
    let g = erdos_renyi_gnm(80, 200, &mut rng);
    let mut dspc = DynamicSpc::build(g, OrderingStrategy::Degree);
    for _ in 0..20 {
        loop {
            let a = VertexId(rng.gen_range(0..80));
            let b = VertexId(rng.gen_range(0..80));
            if a != b && !dspc.graph().has_edge(a, b) {
                dspc.insert_edge(a, b).unwrap();
                break;
            }
        }
    }
    // Snapshot the (stale-label-bearing) maintained index and restore it.
    let bytes = dspc::serialize::encode_index(dspc.index());
    let restored = dspc::serialize::decode_index(&bytes).unwrap();
    verify_all_pairs(dspc.graph(), &restored).unwrap();
    assert_eq!(restored.num_entries(), dspc.index().num_entries());
}

#[test]
fn managed_policy_over_dataset_registry() {
    let dataset = dspc_bench::datasets::find("EUA-S").unwrap();
    let g = dataset.generate(0.05);
    let mut rng = StdRng::seed_from_u64(0x1003);
    let inner = DynamicSpc::build(g, OrderingStrategy::Degree);
    let mut managed = ManagedSpc::new(inner, MaintenancePolicy::every(10));
    for _ in 0..25 {
        let (a, b) = loop {
            let a = VertexId(rng.gen_range(0..managed.inner().graph().capacity() as u32));
            let b = VertexId(rng.gen_range(0..managed.inner().graph().capacity() as u32));
            if a != b && !managed.inner().graph().has_edge(a, b) {
                break (a, b);
            }
        };
        managed
            .apply(dspc::dynamic::GraphUpdate::InsertEdge(a, b))
            .unwrap();
    }
    assert_eq!(managed.rebuilds(), 2);
    verify_sampled_pairs(
        managed.inner().graph(),
        managed.inner().index(),
        500,
        &mut rng,
    )
    .unwrap();
}

#[test]
fn applications_survive_churn() {
    let mut rng = StdRng::seed_from_u64(0x1004);
    let g = watts_strogatz(120, 3, 0.2, &mut rng);
    let mut dspc = DynamicSpc::build(g, OrderingStrategy::Degree);
    for round in 0..5 {
        // Churn.
        for _ in 0..5 {
            loop {
                let a = VertexId(rng.gen_range(0..120));
                let b = VertexId(rng.gen_range(0..120));
                if a != b && !dspc.graph().has_edge(a, b) {
                    dspc.insert_edge(a, b).unwrap();
                    break;
                }
            }
        }
        let m = dspc.graph().num_edges();
        let (a, b) = dspc.graph().nth_edge(rng.gen_range(0..m)).unwrap();
        dspc.delete_edge(a, b).unwrap();

        // Betweenness via index must match Brandes on the live graph.
        let v = VertexId((round * 17 % 120) as u32);
        let via_index = dspc_apps::betweenness::vertex_betweenness(&dspc, v);
        let brandes = dspc_apps::betweenness::brandes_betweenness(dspc.graph());
        assert!(
            (via_index - brandes[v.index()]).abs() < 1e-6,
            "round {round}: {via_index} vs {}",
            brandes[v.index()]
        );

        // Recommendations must only propose non-neighbors.
        let recs = dspc_apps::recommendation::recommend_links(&dspc, v, 10, 3);
        for r in &recs {
            assert!(!dspc.graph().has_edge(v, r.candidate));
        }
    }
}

#[test]
fn parallel_queries_agree_with_sequential_after_updates() {
    let mut rng = StdRng::seed_from_u64(0x1005);
    let g = barabasi_albert(200, 3, &mut rng);
    let mut dspc = DynamicSpc::build(g, OrderingStrategy::Degree);
    for _ in 0..15 {
        loop {
            let a = VertexId(rng.gen_range(0..200));
            let b = VertexId(rng.gen_range(0..200));
            if a != b && !dspc.graph().has_edge(a, b) {
                dspc.insert_edge(a, b).unwrap();
                break;
            }
        }
    }
    let pairs: Vec<_> = (0..500)
        .map(|_| {
            (
                VertexId(rng.gen_range(0..200)),
                VertexId(rng.gen_range(0..200)),
            )
        })
        .collect();
    let seq = dspc::parallel::batch_query(dspc.index(), &pairs);
    let par = dspc::parallel::par_batch_query(dspc.index(), &pairs, 4);
    assert_eq!(seq, par);
}

#[test]
fn edge_list_io_feeds_the_index() {
    // Write a generated graph to the SNAP text format, read it back, build
    // and verify — the ingestion path a real deployment would use.
    let mut rng = StdRng::seed_from_u64(0x1006);
    let g = erdos_renyi_gnm(60, 150, &mut rng);
    let mut buf = Vec::new();
    dspc_graph::io::write_edge_list(&g, &mut buf).unwrap();
    let parsed = dspc_graph::io::read_edge_list(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(parsed.num_edges(), g.num_edges());
    let dspc = DynamicSpc::build(parsed, OrderingStrategy::Degree);
    verify_all_pairs(dspc.graph(), dspc.index()).unwrap();
}

#[test]
fn empty_and_degenerate_graphs() {
    // Empty graph.
    let d = DynamicSpc::build(UndirectedGraph::new(), OrderingStrategy::Degree);
    assert_eq!(d.index_stats().entries, 0);
    // Single vertex.
    let mut d = DynamicSpc::build(UndirectedGraph::with_vertices(1), OrderingStrategy::Degree);
    assert_eq!(d.query(VertexId(0), VertexId(0)), Some((0, 1)));
    // Grow from nothing.
    let v1 = d.add_vertex();
    d.insert_edge(VertexId(0), v1).unwrap();
    assert_eq!(d.query(VertexId(0), v1), Some((1, 1)));
    // Shrink back to nothing.
    d.delete_edge(VertexId(0), v1).unwrap();
    assert_eq!(d.query(VertexId(0), v1), None);
    verify_all_pairs(d.graph(), d.index()).unwrap();
}
