//! Regression pin for the mixed-frontier misclassification.
//!
//! When two doomed last-hop edges share their far endpoint, the legacy
//! per-edge classification compares `spc(v, near)` against a `spc(v, far)`
//! computed one doomed edge at a time: each comparison sees only part of
//! the doomed path count, condition **B** undercounts, and a fully
//! affected vertex (SR — every shortest path doomed) is misread as R
//! (count-only repair). Multi-far classification sums the per-far count
//! columns across every doomed edge sharing that far before comparing,
//! so equality again means "all shortest paths doomed".
//!
//! The crafted graph: two middlemen `m1`, `m2` both adjacent to `v` and
//! `y`, plus a long detour `v—p—q—y`. Deleting `(m1, y)` and `(m2, y)` in
//! one batch dooms *both* of `v`'s shortest paths to `y`; per-edge
//! classification sees `spc(v, y) = 2` against a through-count of 1 per
//! edge and leaves `v`'s stale distance-2 label in place.

use dspc::directed::{ArcUpdate, DynamicDirectedSpc};
use dspc::verify::{verify_all_pairs, verify_directed_all_pairs, verify_weighted_all_pairs};
use dspc::weighted::{DynamicWeightedSpc, WeightedUpdate};
use dspc::{ClassifyMode, DynamicSpc, MaintenanceOptions, MaintenanceThreads, OrderingStrategy};
use dspc_graph::{DirectedGraph, UndirectedGraph, VertexId, WeightedGraph};

// Identity ordering: vertex id == rank, lower id = higher rank.
const M1: VertexId = VertexId(0);
const M2: VertexId = VertexId(1);
const V: VertexId = VertexId(2);
const Y: VertexId = VertexId(5);

fn mixed_frontier_graph() -> UndirectedGraph {
    UndirectedGraph::from_edges(6, &[(0, 2), (1, 2), (0, 5), (1, 5), (2, 3), (3, 4), (4, 5)])
}

fn options(classify: ClassifyMode, threads: usize) -> MaintenanceOptions {
    let mut o = MaintenanceOptions::with_threads(MaintenanceThreads::Fixed(threads));
    o.classify = classify;
    o
}

#[test]
fn undirected_multi_far_classification_fixes_the_batch() {
    let doomed = [(M1, Y), (M2, Y)];
    // Multi-far (the default): exact at every thread count.
    for threads in [1usize, 2, 4, 8] {
        let mut d = DynamicSpc::build(mixed_frontier_graph(), OrderingStrategy::Identity);
        let stats = d
            .delete_edges_with(&doomed, &options(ClassifyMode::MultiFar, threads))
            .unwrap();
        assert_eq!(
            d.query(V, Y),
            Some((3, 1)),
            "threads={threads}: v reaches y through the detour only"
        );
        verify_all_pairs(d.graph(), d.index()).unwrap();
        d.index().check_invariants().unwrap();
        // One sweep per distinct doomed endpoint {m1, m2, y}; y's sweep
        // classifies against both fars at once.
        assert_eq!(stats.classify_sweeps, 3, "threads={threads}");
        assert_eq!(stats.multi_far_sweeps, 1, "threads={threads}");
    }
}

#[test]
fn undirected_per_edge_classification_misreads_sr_as_r() {
    let doomed = [(M1, Y), (M2, Y)];
    let mut d = DynamicSpc::build(mixed_frontier_graph(), OrderingStrategy::Identity);
    let stats = d
        .delete_edges_with(&doomed, &options(ClassifyMode::PerEdge, 1))
        .unwrap();
    // The pin: per-edge condition B sees spc(v, y) = 2 vs a through-count
    // of 1 per edge, classifies v as R, and count-only repair leaves v's
    // stale distance-2 label to y in place.
    assert_ne!(
        d.query(V, Y),
        Some((3, 1)),
        "per-edge classification must still exhibit the mixed-frontier bug"
    );
    assert!(
        verify_all_pairs(d.graph(), d.index()).is_err(),
        "the misclassified index must fail the oracle"
    );
    // Two sweeps per doomed edge — more work for a wrong answer.
    assert_eq!(stats.classify_sweeps, 4);
    assert_eq!(stats.multi_far_sweeps, 0);
}

#[test]
fn directed_mixed_frontier_batch() {
    // Same shape, oriented v→{m1,m2}→y and v→p→q→y.
    let g = DirectedGraph::from_arcs(6, &[(2, 0), (2, 1), (0, 5), (1, 5), (2, 3), (3, 4), (4, 5)]);
    let ops = [ArcUpdate::DeleteArc(M1, Y), ArcUpdate::DeleteArc(M2, Y)];
    for threads in [1usize, 2, 4] {
        let mut d = DynamicDirectedSpc::build(g.clone(), OrderingStrategy::Identity);
        let stats = d
            .apply_batch_with(&ops, &options(ClassifyMode::MultiFar, threads))
            .unwrap();
        assert_eq!(d.query(V, Y), Some((3, 1)), "threads={threads}");
        verify_directed_all_pairs(d.graph(), d.index()).unwrap();
        d.index().check_invariants().unwrap();
        // Tail tasks {m1, m2} plus one head task for y (fars {m1, m2}).
        assert_eq!(stats.classify_sweeps, 3, "threads={threads}");
        assert_eq!(stats.multi_far_sweeps, 1, "threads={threads}");
    }
    // Per-edge ablation reproduces the bug in the directed engine too.
    let mut d = DynamicDirectedSpc::build(g, OrderingStrategy::Identity);
    d.apply_batch_with(&ops, &options(ClassifyMode::PerEdge, 1))
        .unwrap();
    assert!(verify_directed_all_pairs(d.graph(), d.index()).is_err());
}

#[test]
fn weighted_mixed_frontier_batch() {
    let g = WeightedGraph::from_weighted_edges(
        6,
        &[
            (0, 2, 1),
            (1, 2, 1),
            (0, 5, 1),
            (1, 5, 1),
            (2, 3, 1),
            (3, 4, 1),
            (4, 5, 1),
        ],
    );
    let ops = [
        WeightedUpdate::DeleteEdge(M1, Y),
        WeightedUpdate::DeleteEdge(M2, Y),
    ];
    for threads in [1usize, 2, 4] {
        let mut d = DynamicWeightedSpc::build(g.clone(), OrderingStrategy::Identity);
        let stats = d
            .apply_batch_with(&ops, &options(ClassifyMode::MultiFar, threads))
            .unwrap();
        assert_eq!(d.query(V, Y), Some((3, 1)), "threads={threads}");
        verify_weighted_all_pairs(d.graph(), d.index()).unwrap();
        d.index().check_invariants().unwrap();
        assert_eq!(stats.classify_sweeps, 3, "threads={threads}");
        assert_eq!(stats.multi_far_sweeps, 1, "threads={threads}");
    }
    let mut d = DynamicWeightedSpc::build(g, OrderingStrategy::Identity);
    d.apply_batch_with(&ops, &options(ClassifyMode::PerEdge, 1))
        .unwrap();
    assert!(verify_weighted_all_pairs(d.graph(), d.index()).is_err());
}
