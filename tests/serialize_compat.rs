//! Serialization format compatibility: a hand-assembled v1 byte fixture
//! pins the on-disk layout against accidental format drift, and the
//! v1 → v2 migration path (decode packed, re-encode columnar) must
//! preserve every label bit in both directions.

use dspc::serialize::{decode_flat, decode_index, encode_flat, encode_index, encode_index_v2};
use dspc::{spc_query, FlatIndex, OrderingStrategy, Rank};
use dspc_graph::{UndirectedGraph, VertexId};

/// Assembles a v1 file for the 3-vertex path `0 - 1 - 2` under the
/// identity order, byte by byte. If this fixture ever fails to decode,
/// the v1 reader changed behavior and existing files would break.
fn golden_v1_bytes() -> Vec<u8> {
    let mut b: Vec<u8> = Vec::new();
    b.extend_from_slice(b"DSPC"); // magic
    b.extend_from_slice(&1u32.to_le_bytes()); // version 1
    b.extend_from_slice(&1u32.to_le_bytes()); // flags: packed entries
    b.extend_from_slice(&3u64.to_le_bytes()); // n = 3
    for v in [0u32, 1, 2] {
        b.extend_from_slice(&v.to_le_bytes()); // identity rank order
    }
    // Packed entry = hub << 39 | dist << 29 | count. Identity order over
    // the path graph gives: L(0) = {(0,0,1)}, L(1) = {(0,1,1), (1,0,1)},
    // L(2) = {(0,2,1), (1,1,1), (2,0,1)}.
    let pack = |hub: u64, dist: u64, count: u64| (hub << 39) | (dist << 29) | count;
    let rows: [&[(u64, u64, u64)]; 3] = [
        &[(0, 0, 1)],
        &[(0, 1, 1), (1, 0, 1)],
        &[(0, 2, 1), (1, 1, 1), (2, 0, 1)],
    ];
    for row in rows {
        b.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for &(h, d, c) in row {
            b.extend_from_slice(&pack(h, d, c).to_le_bytes());
        }
    }
    b
}

#[test]
fn golden_v1_fixture_decodes() {
    let index = decode_index(&golden_v1_bytes()).expect("golden v1 bytes must stay decodable");
    index.check_invariants().unwrap();
    assert_eq!(index.num_vertices(), 3);
    assert_eq!(index.num_entries(), 6);
    assert_eq!(
        spc_query(&index, VertexId(0), VertexId(2)).as_option(),
        Some((2, 1))
    );
    // The encoder still produces these exact bytes for this index.
    let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]);
    let rebuilt = dspc::build_index(&g, OrderingStrategy::Identity);
    assert_eq!(
        encode_index(&rebuilt).as_ref(),
        golden_v1_bytes().as_slice()
    );
}

#[test]
fn v1_to_v2_migration_preserves_labels() {
    let v1 = golden_v1_bytes();
    // Migrate: decode the v1 file straight into a flat snapshot, then
    // re-encode it columnar.
    let flat = decode_flat(&v1).expect("v1 input decodes into a flat snapshot");
    let v2 = encode_flat(&flat);
    assert_eq!(
        u32::from_le_bytes(v2[4..8].try_into().unwrap()),
        2,
        "migrated file carries the v2 version tag"
    );
    // Both files describe the same index.
    let from_v1 = decode_index(&v1).unwrap();
    let from_v2 = decode_index(&v2).unwrap();
    for v in 0..3u32 {
        let v = VertexId(v);
        assert_eq!(from_v1.label_set(v), from_v2.label_set(v));
        assert_eq!(from_v1.rank(v), from_v2.rank(v));
    }
}

#[test]
fn both_representations_round_trip_on_a_nontrivial_graph() {
    // Petersen graph: vertex-transitive, diameter 2, plenty of equal
    // shortest paths to exercise count accumulation.
    let edges: [(u32, u32); 15] = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 0),
        (0, 5),
        (1, 6),
        (2, 7),
        (3, 8),
        (4, 9),
        (5, 7),
        (7, 9),
        (9, 6),
        (6, 8),
        (8, 5),
    ];
    let g = UndirectedGraph::from_edges(10, &edges);
    let index = dspc::build_index(&g, OrderingStrategy::Degree);
    let flat = FlatIndex::freeze(&index);

    // live → v1 → live, live → v2 → live, flat → v2 → flat: all exact.
    let via_v1 = decode_index(&encode_index(&index)).unwrap();
    let via_v2 = decode_index(&encode_index_v2(&index)).unwrap();
    let flat_back = decode_flat(&encode_flat(&flat)).unwrap();
    for s in g.vertices() {
        for t in g.vertices() {
            let want = spc_query(&index, s, t);
            assert_eq!(spc_query(&via_v1, s, t), want);
            assert_eq!(spc_query(&via_v2, s, t), want);
            assert_eq!(flat_back.query(s, t), want);
        }
    }
    for r in 0..10u32 {
        assert_eq!(via_v1.vertex(Rank(r)), index.vertex(Rank(r)));
        assert_eq!(via_v2.vertex(Rank(r)), index.vertex(Rank(r)));
    }
}
