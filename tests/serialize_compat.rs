//! Serialization format compatibility: a hand-assembled v1 byte fixture
//! pins the on-disk layout against accidental format drift, and the
//! v1 → v2 migration path (decode packed, re-encode columnar) must
//! preserve every label bit in both directions. Also covers the serving
//! layer's warm-start path: a server booted from a `save_flat` file must
//! answer — and continue maintaining — identically to one built live.

use dspc::serialize::{decode_flat, decode_index, encode_flat, encode_index, encode_index_v2};
use dspc::{spc_query, FlatIndex, OrderingStrategy, Rank};
use dspc_graph::{UndirectedGraph, VertexId};

/// Assembles a v1 file for the 3-vertex path `0 - 1 - 2` under the
/// identity order, byte by byte. If this fixture ever fails to decode,
/// the v1 reader changed behavior and existing files would break.
fn golden_v1_bytes() -> Vec<u8> {
    let mut b: Vec<u8> = Vec::new();
    b.extend_from_slice(b"DSPC"); // magic
    b.extend_from_slice(&1u32.to_le_bytes()); // version 1
    b.extend_from_slice(&1u32.to_le_bytes()); // flags: packed entries
    b.extend_from_slice(&3u64.to_le_bytes()); // n = 3
    for v in [0u32, 1, 2] {
        b.extend_from_slice(&v.to_le_bytes()); // identity rank order
    }
    // Packed entry = hub << 39 | dist << 29 | count. Identity order over
    // the path graph gives: L(0) = {(0,0,1)}, L(1) = {(0,1,1), (1,0,1)},
    // L(2) = {(0,2,1), (1,1,1), (2,0,1)}.
    let pack = |hub: u64, dist: u64, count: u64| (hub << 39) | (dist << 29) | count;
    let rows: [&[(u64, u64, u64)]; 3] = [
        &[(0, 0, 1)],
        &[(0, 1, 1), (1, 0, 1)],
        &[(0, 2, 1), (1, 1, 1), (2, 0, 1)],
    ];
    for row in rows {
        b.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for &(h, d, c) in row {
            b.extend_from_slice(&pack(h, d, c).to_le_bytes());
        }
    }
    b
}

#[test]
fn golden_v1_fixture_decodes() {
    let index = decode_index(&golden_v1_bytes()).expect("golden v1 bytes must stay decodable");
    index.check_invariants().unwrap();
    assert_eq!(index.num_vertices(), 3);
    assert_eq!(index.num_entries(), 6);
    assert_eq!(
        spc_query(&index, VertexId(0), VertexId(2)).as_option(),
        Some((2, 1))
    );
    // The encoder still produces these exact bytes for this index.
    let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]);
    let rebuilt = dspc::build_index(&g, OrderingStrategy::Identity);
    assert_eq!(
        encode_index(&rebuilt).as_ref(),
        golden_v1_bytes().as_slice()
    );
}

#[test]
fn v1_to_v2_migration_preserves_labels() {
    let v1 = golden_v1_bytes();
    // Migrate: decode the v1 file straight into a flat snapshot, then
    // re-encode it columnar.
    let flat = decode_flat(&v1).expect("v1 input decodes into a flat snapshot");
    let v2 = encode_flat(&flat);
    assert_eq!(
        u32::from_le_bytes(v2[4..8].try_into().unwrap()),
        2,
        "migrated file carries the v2 version tag"
    );
    // Both files describe the same index.
    let from_v1 = decode_index(&v1).unwrap();
    let from_v2 = decode_index(&v2).unwrap();
    for v in 0..3u32 {
        let v = VertexId(v);
        assert_eq!(from_v1.label_set(v), from_v2.label_set(v));
        assert_eq!(from_v1.rank(v), from_v2.rank(v));
    }
}

#[test]
fn both_representations_round_trip_on_a_nontrivial_graph() {
    // Petersen graph: vertex-transitive, diameter 2, plenty of equal
    // shortest paths to exercise count accumulation.
    let edges: [(u32, u32); 15] = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 0),
        (0, 5),
        (1, 6),
        (2, 7),
        (3, 8),
        (4, 9),
        (5, 7),
        (7, 9),
        (9, 6),
        (6, 8),
        (8, 5),
    ];
    let g = UndirectedGraph::from_edges(10, &edges);
    let index = dspc::build_index(&g, OrderingStrategy::Degree);
    let flat = FlatIndex::freeze(&index);

    // live → v1 → live, live → v2 → live, flat → v2 → flat: all exact.
    let via_v1 = decode_index(&encode_index(&index)).unwrap();
    let via_v2 = decode_index(&encode_index_v2(&index)).unwrap();
    let flat_back = decode_flat(&encode_flat(&flat)).unwrap();
    for s in g.vertices() {
        for t in g.vertices() {
            let want = spc_query(&index, s, t);
            assert_eq!(spc_query(&via_v1, s, t), want);
            assert_eq!(spc_query(&via_v2, s, t), want);
            assert_eq!(flat_back.query(s, t), want);
        }
    }
    for r in 0..10u32 {
        assert_eq!(via_v1.vertex(Rank(r)), index.vertex(Rank(r)));
        assert_eq!(via_v2.vertex(Rank(r)), index.vertex(Rank(r)));
    }
}

/// The v2 checksum footer: every single-byte corruption of a v2 file must
/// fail loudly — never decode to a silently wrong index — and damage is
/// attributed to the section whose checksum caught it.
#[test]
fn v2_corruption_always_fails_loudly() {
    use dspc::serialize::CodecError;

    let g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
    let flat = FlatIndex::freeze(&dspc::build_index(&g, OrderingStrategy::Degree));
    let v2 = encode_flat(&flat);
    const FOOTER_LEN: usize = 5 * 8 + 8; // five crc64s + trailing magic

    // A truncated file fails loudly, whether the cut lands in the footer…
    for cut in 1..FOOTER_LEN {
        assert!(
            decode_flat(&v2[..v2.len() - cut]).is_err(),
            "file truncated by {cut} bytes must not decode"
        );
    }
    // …or removes it entirely plus some of the counts column.
    assert!(decode_flat(&v2[..v2.len() - FOOTER_LEN - 3]).is_err());

    // Known positions blame the right section: byte 20 is the first rank
    // permutation entry (header section), the byte just before the footer
    // is the last count (counts section).
    let mut bad = v2.to_vec();
    bad[20] ^= 0x01;
    assert_eq!(decode_flat(&bad), Err(CodecError::Corrupt("header")));
    let mut bad = v2.to_vec();
    bad[v2.len() - FOOTER_LEN - 1] ^= 0x80;
    assert_eq!(decode_flat(&bad), Err(CodecError::Corrupt("counts")));
    // Damage to the footer itself (its magic included) is still an error —
    // a bit-flipped marker must not demote the file to unchecked parsing.
    let mut bad = v2.to_vec();
    bad[v2.len() - 1] ^= 0x01;
    assert_eq!(decode_flat(&bad), Err(CodecError::Corrupt("footer")));

    // Exhaustive: flipping any single bit anywhere in the file fails.
    for at in 0..v2.len() {
        let mut bad = v2.to_vec();
        bad[at] ^= 0x04;
        assert!(
            decode_flat(&bad).is_err(),
            "bit flip at byte {at} decoded silently"
        );
    }

    // Compatibility floor: a footer-less v2 file (written before checksums
    // existed) still decodes, bit-identical to the checksummed one.
    let legacy = &v2[..v2.len() - FOOTER_LEN];
    let decoded = decode_flat(legacy).expect("footer-less v2 stays decodable");
    for s in g.vertices() {
        for t in g.vertices() {
            assert_eq!(decoded.query(s, t), flat.query(s, t));
        }
    }
}

/// Warm start: `save_flat` → boot an `EpochServer` straight from the file
/// (the loaded columns are published as epoch 0 as-is, and the live engine
/// is reconstructed via `thaw` + `DynamicSpc::from_parts`) → the server
/// must answer identically to a live-built one, both before and after a
/// rotation (i.e. the thawed engine also *maintains* identically).
#[test]
fn warm_start_server_matches_live_built_server() {
    use dspc::dynamic::GraphUpdate;
    use dspc::serialize::{load_flat, save_flat};
    use dspc::{DynamicSpc, ShardedFlatIndex};
    use dspc_graph::generators::random::barabasi_albert;
    use dspc_serve::{EpochServer, ServeConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let n = 40u32;
    let g = barabasi_albert(n as usize, 3, &mut StdRng::seed_from_u64(0xB007));
    let live_engine = DynamicSpc::build(g.clone(), OrderingStrategy::Degree);
    let flat = FlatIndex::freeze(live_engine.index());
    let path = std::env::temp_dir().join(format!("dspc_warm_start_{}.v2", std::process::id()));
    save_flat(&flat, &path).expect("write snapshot file");

    // Boot from disk: the loaded columns go straight into serving position
    // (sharded, epoch 0), the engine thaws from the same columns.
    let loaded = load_flat(&path).expect("read snapshot file");
    std::fs::remove_file(&path).ok();
    let warm_engine = DynamicSpc::from_parts(g.clone(), loaded.thaw(), OrderingStrategy::Degree);
    let mut warm = EpochServer::warm_start(
        warm_engine,
        ShardedFlatIndex::from_flat(&loaded, 3),
        ServeConfig { shards: 3 },
    );
    let mut live = EpochServer::new(live_engine, ServeConfig { shards: 3 });

    let mut warm_reader = warm.reader();
    let mut live_reader = live.reader();
    for s in 0..n {
        for t in 0..n {
            let (s, t) = (VertexId(s), VertexId(t));
            // Same epoch stamp (0) and bit-identical answers.
            assert_eq!(warm_reader.query(s, t), live_reader.query(s, t));
        }
    }

    // The warm-started engine keeps maintaining identically: one mixed
    // batch, one rotation, full answer-table agreement at epoch 1.
    let (da, db) = g.edges().next().expect("graph has edges");
    let mut insert = None;
    'outer: for a in 0..n {
        for b in (a + 1)..n {
            if !g.has_edge(VertexId(a), VertexId(b)) {
                insert = Some((VertexId(a), VertexId(b)));
                break 'outer;
            }
        }
    }
    let (ia, ib) = insert.expect("graph is not complete");
    let batch = vec![
        GraphUpdate::DeleteEdge(da, db),
        GraphUpdate::InsertEdge(ia, ib),
    ];
    warm.submit(batch.clone()).expect("unjournaled submit");
    live.submit(batch).expect("unjournaled submit");
    warm.rotate().expect("valid batch");
    live.rotate().expect("valid batch");
    assert_eq!(warm_reader.refresh(), 1);
    assert_eq!(live_reader.refresh(), 1);
    for s in 0..n {
        for t in 0..n {
            let (s, t) = (VertexId(s), VertexId(t));
            assert_eq!(warm_reader.query(s, t), live_reader.query(s, t));
        }
    }
}
